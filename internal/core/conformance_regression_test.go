package core

// Regression tests for the divergences flushed out by the cross-engine
// conformance harness (internal/conformance). Each test is named for the bug
// it pins; see DESIGN.md § 9 "Conformance & oracles".

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"entmatcher/internal/matrix"
)

// TestDegenerateRowAbstention pins the abstention semantics for rows with no
// selectable maximum (every score NaN or −Inf): before the fix, RowMax's -1
// sentinel slipped through GreedyDecider's dummy check (−1 ≥ realCols is
// false) and a Pair with Target −1 was emitted. Dense and streaming paths
// must both abstain, identically.
func TestDegenerateRowAbstention(t *testing.T) {
	nan, ninf := math.NaN(), math.Inf(-1)
	s := mat(t,
		[]float64{0.5, 0.2, 0.1},
		[]float64{ninf, ninf, ninf},
		[]float64{nan, nan, nan},
		[]float64{nan, 0.3, ninf},
	)
	pairs, abstained, err := GreedyDecider{}.Decide(&Context{S: s}, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.Target < 0 {
			t.Fatalf("dense greedy emitted negative target: %+v", p)
		}
	}
	if want := []int{1, 2}; !reflect.DeepEqual(abstained, want) {
		t.Fatalf("dense abstained = %v, want %v", abstained, want)
	}
	if len(pairs) != 2 || pairs[0] != (Pair{Source: 0, Target: 0, Score: 0.5}) || pairs[1] != (Pair{Source: 3, Target: 1, Score: 0.3}) {
		t.Fatalf("dense pairs = %+v", pairs)
	}

	// The streaming engine must agree row for row, including with tile
	// shapes that split the degenerate rows across many tiles.
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {4, 3}} {
		st := &matrix.DenseTileSource{M: s, TileRows: shape[0], TileCols: shape[1]}
		res, err := NewDInfStream().Match(&Context{Stream: st})
		if err != nil {
			t.Fatalf("tiles %v: %v", shape, err)
		}
		if !reflect.DeepEqual(res.Pairs, pairs) || !reflect.DeepEqual(res.Abstained, abstained) {
			t.Fatalf("tiles %v: streaming pairs=%+v abstained=%v, dense pairs=%+v abstained=%v",
				shape, res.Pairs, res.Abstained, pairs, abstained)
		}
	}
}

// TestDegenerateRowAbstentionWithDummies: a degenerate row must be reported
// as abstained exactly once, not confused with a dummy assignment, and real
// rows must keep matching normally.
func TestDegenerateRowAbstentionWithDummies(t *testing.T) {
	ninf := math.Inf(-1)
	s := mat(t,
		[]float64{0.9, 0.1, 0.0},
		[]float64{ninf, ninf, ninf},
		[]float64{0.1, 0.2, 0.7}, // dummy column wins: ordinary abstention
	)
	ctx := &Context{S: s, NumDummies: 1}
	pairs, abstained, err := GreedyDecider{}.Decide(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2}; !reflect.DeepEqual(abstained, want) {
		t.Fatalf("abstained = %v, want %v", abstained, want)
	}
	if len(pairs) != 1 || pairs[0].Source != 0 || pairs[0].Target != 0 {
		t.Fatalf("pairs = %+v", pairs)
	}
}

// countdownCtx is a context whose Err turns into context.Canceled after a
// fixed number of checks — a deterministic probe for how often a loop
// actually polls its cancellation checkpoint.
type countdownCtx struct {
	context.Context
	remaining int32
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt32(&c.remaining, -1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestGaleShapleyCancelDuringCascade pins the cancellation granularity of
// the deferred-acceptance loop. On a matrix where every row has identical
// preferences, popping row k triggers a displacement cascade of O(rows−k)
// proposals without returning to the outer freed-row loop, so counting pops
// (the old behavior) checks the context O(rows/stride) times while counting
// proposals (the fix) checks O(rows²/stride) times. The countdown budget
// below is sized so the old code ran to completion and the fixed code must
// observe the cancellation mid-cascade.
func TestGaleShapleyCancelDuringCascade(t *testing.T) {
	const n = 256
	s := matrix.New(n, n)
	for i := 0; i < n; i++ {
		row := s.Row(i)
		for j := range row {
			row[j] = float64(n - j) // same descending preference for every row
		}
	}
	// Preference construction consumes 2·(n/64) = 8 checks; the per-pop
	// accounting consumed only n/64 = 4 more, finishing well under the
	// budget. Per-proposal accounting needs ~n²/2/64 ≈ 512 and must fail.
	cc := &countdownCtx{Context: context.Background(), remaining: 20}
	_, _, err := GaleShapleyDecider{}.Decide(&Context{S: s, Ctx: cc}, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled mid-cascade, got %v", err)
	}
}

// TestExtraBytesAccounting pins the package accounting rule (peak
// simultaneously-live input-scaled allocations, payload bytes) for every
// transform and decider, so the paper's memory tables stay comparable across
// methods. In particular CSLS must count its two φ vectors — (rows+cols)·8 —
// which the pre-harness estimate omitted while Sinkhorn counted its column
// scratch.
func TestExtraBytesAccounting(t *testing.T) {
	mb := func(r, c int) int64 { return int64(r) * int64(c) * 8 }
	cases := []struct {
		name    string
		got     func(r, c int) int64
		formula func(r, c int) int64
	}{
		{"none", NoneTransform{}.ExtraBytes, func(r, c int) int64 { return 0 }},
		{"csls", CSLSTransform{K: 1}.ExtraBytes, func(r, c int) int64 {
			return mb(r, c) + int64(r+c)*8
		}},
		{"reciprocal", ReciprocalTransform{WithRanking: true}.ExtraBytes, func(r, c int) int64 {
			return 3*mb(r, c) + int64(r+c)*16
		}},
		{"reciprocal-wr", ReciprocalTransform{WithRanking: false}.ExtraBytes, func(r, c int) int64 {
			return mb(r, c) + int64(r+c)*24
		}},
		{"sinkhorn", SinkhornTransform{L: 100, Tau: 0.05}.ExtraBytes, func(r, c int) int64 {
			return mb(r, c) + int64(c)*16
		}},
		{"greedy", GreedyDecider{}.ExtraBytes, func(r, c int) int64 { return int64(r) * 16 }},
		{"gale-shapley", GaleShapleyDecider{}.ExtraBytes, func(r, c int) int64 {
			return 2*int64(r)*int64(c)*4 + int64(r)*32 + int64(c)*8
		}},
		{"hungarian", HungarianDecider{}.ExtraBytes, func(r, c int) int64 {
			if r <= c {
				return int64(r)*16 + int64(c)*41
			}
			return mb(r, c) + int64(c)*16 + int64(r)*41
		}},
	}
	shapes := [][2]int{{5, 7}, {7, 5}, {40, 40}, {1, 1}}
	for _, tc := range cases {
		for _, sh := range shapes {
			r, c := sh[0], sh[1]
			if got, want := tc.got(r, c), tc.formula(r, c); got != want {
				t.Errorf("%s.ExtraBytes(%d, %d) = %d, want %d", tc.name, r, c, got, want)
			}
		}
	}
	// The rule must preserve the paper's medium-scale memory ordering
	// (also asserted end-to-end by TestResultExtraBytesOrdering).
	r, c := 40, 40
	csls := CSLSTransform{K: 1}.ExtraBytes(r, c)
	smat := GaleShapleyDecider{}.ExtraBytes(r, c)
	if smat <= csls {
		t.Fatalf("SMat decider %d not above CSLS transform %d under the unified rule", smat, csls)
	}
}

// tieHeavyScores draws every score from a small discrete set so ties are
// dense — the regime where tie-breaking contracts actually bite.
func tieHeavyScores(rng *rand.Rand, rows, cols, levels int) *matrix.Dense {
	m := matrix.New(rows, cols)
	data := m.Data()
	for i := range data {
		data[i] = float64(rng.Intn(levels)) / float64(levels)
	}
	return m
}

// TestRInfPBMatchesRInfAtFullWidth pins the contract argsortDescByKey claims:
// with a block size covering every candidate (C ≥ max(rows, cols)), the
// progressive-blocking variant must reproduce full RInf element for element —
// same pairs, same scores (bit-exact: both compute −(rank_st+rank_ts)/2 with
// exact integer-valued arithmetic), same abstentions — even on tie-heavy
// matrices where the shared tie-break (ascending entity index) decides
// almost every rank.
func TestRInfPBMatchesRInfAtFullWidth(t *testing.T) {
	shapes := [][2]int{{30, 30}, {20, 35}, {35, 20}}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		for _, sh := range shapes {
			rows, cols := sh[0], sh[1]
			s := tieHeavyScores(rng, rows, cols, 5)
			c := rows
			if cols > rows {
				c = cols
			}
			ctx := &Context{S: s}
			full, err := NewRInf().Match(ctx)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := NewRInfPB(c).Match(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(full.Pairs, pb.Pairs) {
				t.Fatalf("seed %d shape %v: RInf-pb(C=%d) diverged from RInf:\nfull: %+v\npb:   %+v",
					seed, sh, c, full.Pairs, pb.Pairs)
			}
			if !reflect.DeepEqual(full.Abstained, pb.Abstained) {
				t.Fatalf("seed %d shape %v: abstained diverged: %v vs %v", seed, sh, full.Abstained, pb.Abstained)
			}
		}
	}
}

// TestRInfPBMatchesRInfWithDummies extends the full-width pin to the
// unmatchable setting: dummy-column abstention must agree too.
func TestRInfPBMatchesRInfWithDummies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := tieHeavyScores(rng, 24, 20, 4)
	s := AddDummyColumns(base, 4, 0.5)
	ctx := &Context{S: s, NumDummies: 4}
	full, err := NewRInf().Match(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewRInfPB(s.Cols()).Match(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Pairs, pb.Pairs) || !reflect.DeepEqual(full.Abstained, pb.Abstained) {
		t.Fatalf("dummy run diverged:\nfull: %+v / %v\npb:   %+v / %v",
			full.Pairs, full.Abstained, pb.Pairs, pb.Abstained)
	}
}
