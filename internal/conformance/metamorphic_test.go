package conformance

import (
	"math/rand"
	"runtime"
	"testing"

	"entmatcher/internal/core"
	"entmatcher/internal/matrix"
)

// equivariant lists the matchers whose selections are invariant under
// relabelling of rows and columns (their decisions depend only on score
// comparisons, never on index arithmetic beyond tie-breaking).
func equivariantMatchers() []Entry {
	var out []Entry
	for _, e := range Matchers() {
		if e.Name == "Sink." {
			// Sinkhorn normalization sums rows and columns; permutation
			// changes the float summation order, so its output is equivariant
			// only up to rounding. It is checked separately below.
			continue
		}
		out = append(out, e)
	}
	return out
}

// TestPermutationEquivariance: relabelling rows and columns, running the
// matcher and mapping the result back must reproduce the original selections
// exactly. Valid as an exact check only on well-separated matrices — without
// ties, tie-breaking (the one index-dependent rule) never fires, and every
// per-element score computation sees bitwise-identical inputs.
func TestPermutationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []Case{
		{Name: "well-separated-7x7", S: WellSeparated(rng, 7, 7)},
		{Name: "tall-9x5", S: WellSeparated(rng, 9, 5)},
		{Name: "wide-5x9", S: WellSeparated(rng, 5, 9)},
		WithDummyCols("dummies-6x4+2", WellSeparated(rng, 6, 4), 2, 0.5),
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			rows, cols := tc.S.Rows(), tc.S.Cols()
			rowPerm := rng.Perm(rows)
			colPerm := DummyPreservingPerm(rng, cols, tc.NumDummies)
			perm := Permute(tc.S, rowPerm, colPerm)
			for _, e := range equivariantMatchers() {
				if e.Name == "RInf" {
					// Full RInf carries structural preference ties even on
					// well-separated scores: every cell attaining its column
					// maximum has preference exactly 1, so a row that is the
					// argmax of two columns ties and the rank tie-break is
					// index-dependent. Equivariance holds only when column
					// pivots are distinct — pinned separately by
					// TestRInfPermutationEquivarianceDistinctPivots.
					continue
				}
				base, err := e.New().Match(&core.Context{S: tc.S, NumDummies: tc.NumDummies})
				if err != nil {
					t.Fatalf("%s: %v", e.Name, err)
				}
				pres, err := e.New().Match(&core.Context{S: perm, NumDummies: tc.NumDummies})
				if err != nil {
					t.Fatalf("%s permuted: %v", e.Name, err)
				}
				mapped := MapResult(pres, rowPerm, colPerm)
				if !SelectionsEqual(base, mapped) {
					t.Errorf("%s not permutation-equivariant: %s", e.Name, DescribeDiff(base, mapped))
				}
			}
		})
	}
}

// TestRInfPermutationEquivarianceDistinctPivots: full RInf is exactly
// permutation-equivariant once the structural preference ties vanish, which
// requires every column's maximum in a distinct row AND every row's maximum
// in a distinct column (the source- and target-side preferences both pin
// value 1 at the pivots). By pigeonhole that is only possible on square
// matrices — one more reason the general permutation test excludes RInf. A
// diagonal-boosted well-separated square matrix guarantees both.
func TestRInfPermutationEquivarianceDistinctPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, sh := range [][2]int{{7, 7}, {10, 10}} {
		rows, cols := sh[0], sh[1]
		s := WellSeparated(rng, rows, cols)
		for j := 0; j < cols; j++ {
			s.Set(j, j, s.At(j, j)+2) // column j's max sits in row j
		}
		rowPerm, colPerm := rng.Perm(rows), rng.Perm(cols)
		base, err := core.NewRInf().Match(&core.Context{S: s})
		if err != nil {
			t.Fatal(err)
		}
		pres, err := core.NewRInf().Match(&core.Context{S: Permute(s, rowPerm, colPerm)})
		if err != nil {
			t.Fatal(err)
		}
		if mapped := MapResult(pres, rowPerm, colPerm); !ResultsIdentical(base, mapped) {
			t.Fatalf("%dx%d: RInf not equivariant with distinct pivots: %s", rows, cols, DescribeDiff(base, mapped))
		}
	}
}

// TestSinkhornPermutationStability: Sinkhorn's selections (not its exact
// float output) must survive relabelling on well-separated inputs, where the
// post-normalization argmax margins dwarf summation-order rounding.
func TestSinkhornPermutationStability(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	s := WellSeparated(rng, 8, 8)
	rowPerm, colPerm := rng.Perm(8), rng.Perm(8)
	base, err := core.NewSinkhorn(core.DefaultSinkhornIterations).Match(&core.Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := core.NewSinkhorn(core.DefaultSinkhornIterations).Match(&core.Context{S: Permute(s, rowPerm, colPerm)})
	if err != nil {
		t.Fatal(err)
	}
	if mapped := MapResult(pres, rowPerm, colPerm); !SelectionsEqual(base, mapped) {
		t.Fatalf("Sinkhorn selections changed under permutation: %s", DescribeDiff(base, mapped))
	}
}

// TestAffineInvariance: scaling scores by a positive power of two and adding
// a dyadic constant must leave every comparison-based matcher's selections
// unchanged. On dyadic tie-heavy matrices all the induced arithmetic is exact
// in float64, so ties are preserved exactly too and the check is bitwise
// sound even in the regime where almost every comparison is a tie-break.
// (Sinkhorn is excluded by design: an affine map of the scores is a
// temperature change, which legitimately alters its soft assignment.)
func TestAffineInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cases := []Case{
		{Name: "tie-dense-8x8", S: TieHeavy(rng, 8, 8, 8)},
		{Name: "tall-ties-7x4", S: TieHeavy(rng, 7, 4, 8)},
		WithDummyCols("tie-dummies-6x4+2", TieHeavy(rng, 6, 4, 8), 2, 0.5),
	}
	const scale, shift = 4, 0.375
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			mapped := ApplyElementwise(tc.S, func(v float64) float64 { return v*scale + shift })
			for _, e := range equivariantMatchers() {
				base, err := e.New().Match(&core.Context{S: tc.S, NumDummies: tc.NumDummies})
				if err != nil {
					t.Fatalf("%s: %v", e.Name, err)
				}
				aff, err := e.New().Match(&core.Context{S: mapped, NumDummies: tc.NumDummies})
				if err != nil {
					t.Fatalf("%s affine: %v", e.Name, err)
				}
				if !SelectionsEqual(base, aff) {
					t.Errorf("%s not affine-invariant: %s", e.Name, DescribeDiff(base, aff))
				}
			}
		})
	}
}

// TestMonotoneTransformInvariance: a strictly monotone (non-affine) transform
// preserves all score orderings, so matchers that consume only per-row and
// per-column orderings of the raw scores — DInf's argmax and SMat's
// preference lists — must select identically. (RInf is deliberately absent:
// its preference p = S − colMax subtracts column maxima before ranking, and
// a non-affine monotone map does not commute with that subtraction.)
func TestMonotoneTransformInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cases := []Case{
		{Name: "well-separated-7x7", S: WellSeparated(rng, 7, 7)},
		{Name: "tall-9x5", S: WellSeparated(rng, 9, 5)},
		{Name: "wide-5x9", S: WellSeparated(rng, 5, 9)},
	}
	cube := func(v float64) float64 { return v * v * v }
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			mapped := ApplyElementwise(tc.S, cube)
			for _, mk := range []func() core.Matcher{
				func() core.Matcher { return core.NewDInf() },
				func() core.Matcher { return core.NewSMat() },
			} {
				base, err := mk().Match(&core.Context{S: tc.S})
				if err != nil {
					t.Fatal(err)
				}
				mon, err := mk().Match(&core.Context{S: mapped})
				if err != nil {
					t.Fatal(err)
				}
				if !SelectionsEqual(base, mon) {
					t.Errorf("%s not monotone-invariant: %s", base.Matcher, DescribeDiff(base, mon))
				}
			}
		})
	}
}

// TestDummyAbstentionConsistency: on a matrix with a hopeless row (every real
// score far below the dummy score) and otherwise unambiguous matches, every
// 1-to-1-capable and greedy matcher must abstain exactly on the hopeless row
// and match the clear rows. All values are dyadic so transform arithmetic is
// exact.
func TestDummyAbstentionConsistency(t *testing.T) {
	const rows, real, dummies = 5, 4, 2
	s := matrix.New(rows, real+dummies)
	for i := 0; i < rows; i++ {
		row := s.Row(i)
		for j := 0; j < real; j++ {
			switch {
			case i == rows-1:
				row[j] = 0.125 // hopeless row: far below the dummy score
			case i == j:
				row[j] = 0.9375
			default:
				row[j] = 0.0625
			}
		}
		for j := real; j < real+dummies; j++ {
			row[j] = 0.5
		}
	}
	ctx := &core.Context{S: s, NumDummies: dummies}
	for _, e := range equivariantMatchers() {
		res, err := e.New().Match(ctx)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if got := CanonicalInts(res.Abstained); len(got) != 1 || got[0] != rows-1 {
			t.Errorf("%s abstained = %v, want exactly the hopeless row [%d]", e.Name, got, rows-1)
			continue
		}
		for _, p := range Canonical(res.Pairs) {
			if p.Target != p.Source {
				t.Errorf("%s matched row %d to %d, want the diagonal", e.Name, p.Source, p.Target)
			}
		}
	}
}

// TestDeterminismAcrossGOMAXPROCS: the parallel kernels must be
// schedule-independent — results at GOMAXPROCS(1) are bit-identical to
// results at full parallelism, on matrices large enough to actually engage
// the worker pool.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	s := TieHeavy(rng, 160, 130, 16)
	ctx := &core.Context{S: s}
	baseline := make(map[string]*core.Result)
	for _, e := range Matchers() {
		res, err := e.New().Match(ctx)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		baseline[e.Name] = res
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, e := range Matchers() {
		res, err := e.New().Match(ctx)
		if err != nil {
			t.Fatalf("%s at GOMAXPROCS(1): %v", e.Name, err)
		}
		if !ResultsIdentical(baseline[e.Name], res) {
			t.Errorf("%s differs at GOMAXPROCS(1): %s", e.Name, DescribeDiff(baseline[e.Name], res))
		}
	}
}
