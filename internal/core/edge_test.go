package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"entmatcher/internal/matrix"
)

// TestCSLSKLargerThanColumns: k above the column count degenerates to the
// full-row mean without error.
func TestCSLSKLargerThanColumns(t *testing.T) {
	s := mat(t, []float64{0.5, 0.1}, []float64{0.2, 0.9})
	if _, err := NewCSLS(10).Match(&Context{S: s}); err != nil {
		t.Fatal(err)
	}
}

// TestCSLSMonotoneK mirrors the left edge of Figure 6 on a synthetic
// hub-heavy instance: k=1 must be at least as accurate as a large k.
func TestCSLSMonotoneK(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 60
	s := matrix.New(n, n)
	for i := 0; i < n; i++ {
		row := s.Row(i)
		for j := range row {
			row[j] = rng.Float64() * 0.4
		}
		row[i] = 0.45 + rng.Float64()*0.2
		row[0] += 0.3 // column 0 is a hub
	}
	hits := func(k int) int {
		res, err := NewCSLS(k).Match(&Context{S: s})
		if err != nil {
			t.Fatal(err)
		}
		return diagonalHits(res)
	}
	if hits(1) < hits(20) {
		t.Fatalf("k=1 hits %d below k=20 hits %d", hits(1), hits(20))
	}
}

// TestSinkhornDeterministic: same inputs, same outputs.
func TestSinkhornDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randScores(rng, 25, 25)
	tr := SinkhornTransform{L: 50, Tau: 0.05}
	a, err := tr.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a, b) {
		t.Fatal("Sinkhorn transform not deterministic")
	}
}

// TestSinkhornZeroIterations leaves a (scaled) exponential of the input:
// greedy on it equals greedy on the raw scores.
func TestSinkhornZeroIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := randScores(rng, 15, 15)
	raw, err := NewDInf().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSinkhorn(0).Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	pr, ps := pairsBySource(raw), pairsBySource(sink)
	for k, v := range pr {
		if ps[k] != v {
			t.Fatal("l=0 Sinkhorn changed the greedy matching")
		}
	}
}

// TestHungarianHandlesNegativeScores: the LAP solver must not assume
// non-negative similarities (Euclidean metric scores are negative).
func TestHungarianHandlesNegativeScores(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := matrix.New(n, n)
		data := s.Data()
		for i := range data {
			data[i] = -rng.Float64() * 10
		}
		res, err := NewHungarian().Match(&Context{S: s})
		if err != nil {
			return false
		}
		return math.Abs(totalScore(s, res)-bruteForceBestAssignment(s)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestHungarianSingleCell: the 1×1 problem.
func TestHungarianSingleCell(t *testing.T) {
	s := mat(t, []float64{0.4})
	res, err := NewHungarian().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0] != (Pair{Source: 0, Target: 0, Score: 0.4}) {
		t.Fatalf("pairs = %+v", res.Pairs)
	}
}

// TestGaleShapleyAgreesWithHungarianOnCleanDiagonal: when the instance has
// an unambiguous mutual-best matching, the stable matching and the optimal
// assignment coincide.
func TestGaleShapleyAgreesWithHungarianOnCleanDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := diagonalish(rng, 40, 1.0, 0.2)
	hun, err := NewHungarian().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := NewSMat().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	ph, pg := pairsBySource(hun), pairsBySource(gs)
	for k, v := range ph {
		if pg[k] != v {
			t.Fatalf("row %d: Hungarian %d, Gale-Shapley %d", k, v, pg[k])
		}
	}
}

// TestRInfTiesBrokenDeterministically: a fully tied matrix must yield a
// stable, reproducible matching.
func TestRInfTiesBrokenDeterministically(t *testing.T) {
	s := matrix.New(6, 6)
	s.Fill(0.5)
	a, err := NewRInf().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRInf().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := pairsBySource(a), pairsBySource(b)
	for k, v := range pa {
		if pb[k] != v {
			t.Fatal("tied matching not deterministic")
		}
	}
}

// TestDummyScoreFromValidation quantile behaviour.
func TestDummyScoreFromValidation(t *testing.T) {
	v := mat(t,
		[]float64{0.1, 0.2},
		[]float64{0.3, 0.4},
		[]float64{0.5, 0.6},
		[]float64{0.7, 0.8},
	)
	// Row maxima: 0.2, 0.4, 0.6, 0.8.
	if got := DummyScoreFromValidation(v, 0); got != 0.2 {
		t.Fatalf("q=0: %v", got)
	}
	if got := DummyScoreFromValidation(v, 1); got != 0.8 {
		t.Fatalf("q=1: %v", got)
	}
	if got := DummyScoreFromValidation(v, 0.34); got != 0.4 {
		t.Fatalf("q=0.34: %v", got)
	}
	// Clamping and nil safety.
	if got := DummyScoreFromValidation(v, -5); got != 0.2 {
		t.Fatalf("q<0: %v", got)
	}
	if got := DummyScoreFromValidation(nil, 0.5); got != 0 {
		t.Fatalf("nil matrix: %v", got)
	}
}

// TestRInfPBSmallBlockDegradesGracefully: tiny blocks must still produce a
// valid (if less accurate) matching for every row.
func TestRInfPBSmallBlockDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := diagonalish(rng, 50, 0.6, 0.4)
	res, err := NewRInfPB(2).Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs)+len(res.Abstained) != 50 {
		t.Fatalf("rows unaccounted: %d + %d", len(res.Pairs), len(res.Abstained))
	}
	full, err := NewRInf().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if diagonalHits(res) > diagonalHits(full) {
		t.Fatalf("tiny block beat the full algorithm: %d > %d", diagonalHits(res), diagonalHits(full))
	}
}

// TestCompositeTransformErrorPropagates: a failing stage must surface with
// the matcher name attached.
func TestCompositeTransformErrorPropagates(t *testing.T) {
	bad := NewComposite(CSLSTransform{K: 0}, GreedyDecider{}, "BadCSLS")
	_, err := bad.Match(&Context{S: matrix.New(2, 2)})
	if err == nil {
		t.Fatal("invalid transform config did not error")
	}
}

// TestWithDummiesDoesNotMutateOriginal.
func TestWithDummiesDoesNotMutateOriginal(t *testing.T) {
	s := matrix.New(4, 2)
	ctx := &Context{S: s}
	padded := WithDummies(ctx, -1)
	if ctx.S.Cols() != 2 || ctx.NumDummies != 0 {
		t.Fatal("original context mutated")
	}
	if padded.S.Cols() != 4 || padded.NumDummies != 2 {
		t.Fatalf("padded: cols=%d dummies=%d", padded.S.Cols(), padded.NumDummies)
	}
}
