package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"entmatcher"
	"entmatcher/internal/ann"
	"entmatcher/internal/core"
	"entmatcher/internal/datagen"
	"entmatcher/internal/matrix"
	"entmatcher/internal/quant"
	"entmatcher/internal/sim"
)

// runANN measures the IVF approximate candidate generator against the
// exhaustive streaming build it replaces, on a DWY100K-profile dataset. One
// exact top-C graph is built and timed as the baseline, the IVF quantizer is
// trained once, and then nprobe sweeps from 1 to full coverage: each point
// reports the graph-build time (queries only; training is its own row, and
// the summary speedup charges it), recall@C against the exact graph, and the
// end-to-end Hits@1 of the sparse RInf matcher running on the approximate
// graphs. At nprobe = Clusters the graph is bit-identical to the exact build
// — the last sweep row doubles as a live conformance check. Every row is
// recorded for benchtab -json (BENCH_ann.json).
func runANN(cfg *Config, env *Env) ([]*Table, error) {
	ctx := context.Background()
	prof := datagen.DWY100K()[0]
	d, err := env.Dataset(prof, cfg.ScaleLarge)
	if err != nil {
		return nil, err
	}
	c := 64
	if cfg.SparseCand > 0 {
		c = cfg.SparseCand
	}
	// RREA, not GCN: approximate retrieval presumes the encoder left real
	// cluster structure in the embedding space. RREA's low-noise geometry has
	// it; GCN's noise floor (Noise 0.20, RawMix 0.70) scatters the deep ranks
	// of every top-C list nearly uniformly, which caps recall@C near the
	// scanned fraction regardless of the index (see DESIGN.md § 12).
	basePC := entmatcher.PipelineConfig{Model: entmatcher.ModelRREA, WithValidation: true, CandidateBudget: c}
	run, err := env.Run(d, basePC)
	if err != nil {
		return nil, err
	}
	rows, cols := run.Dims()
	if c > cols {
		c = cols
	}
	dim := env.dim(d, basePC)

	// Exact baseline: one exhaustive streaming build of the forward top-C
	// graph, plus the exact sparse RInf end-to-end result.
	runtime.GC()
	t0 := time.Now()
	exactG, err := matrix.BuildCandGraph(ctx, run.Stream, c)
	if err != nil {
		return nil, fmt.Errorf("ann: exact build: %w", err)
	}
	exactBuild := time.Since(t0)
	exactRes, exactMetrics, err := matchBudgeted(cfg, env, run, entmatcher.NewRInfSparse(c))
	if err != nil {
		return nil, fmt.Errorf("ann: RInf (exact): %w", err)
	}
	cfg.logf("  ann exact: build %v, RInf Hits@1=%.3f",
		exactBuild.Round(time.Millisecond), exactMetrics.Recall)
	env.Record(Record{
		Name:       fmt.Sprintf("ANN/exact/build/C=%d/n=%d", c, rows),
		NsPerOp:    exactBuild.Nanoseconds(),
		BytesPerOp: exactG.SizeBytes(),
		Hits1:      1,
		Features:   &RecordFeatures{SrcRows: rows, TgtRows: cols, Dim: dim, Engine: "sparse", Cand: c},
	})
	env.Record(Record{
		Name:     fmt.Sprintf("ANN/exact/RInf/C=%d/n=%d", c, rows),
		NsPerOp:  exactRes.Elapsed.Nanoseconds(),
		Hits1:    exactMetrics.Recall,
		Features: &RecordFeatures{SrcRows: rows, TgtRows: cols, Dim: dim, Engine: "sparse", Cand: c},
	})

	// Train the quantizers once; every nprobe view shares them. The reverse
	// index is included because RInf consumes both graph directions.
	sTab, tTab := run.Stream.PreparedTables()
	annSrc, err := ann.NewSource(run.Stream, sTab, tTab, ann.Config{Clusters: cfg.ANNClusters, Seed: 1})
	if err != nil {
		return nil, err
	}
	runtime.GC()
	t0 = time.Now()
	if err := annSrc.BuildIndexes(ctx, true); err != nil {
		return nil, fmt.Errorf("ann: training: %w", err)
	}
	train := time.Since(t0)
	fwdIdx, err := annSrc.ForwardIndex(ctx)
	if err != nil {
		return nil, err
	}
	k := fwdIdx.Clusters()
	if cfg.QuantANN {
		// Quantized slab scans: the nprobe sweep below then measures SQ8 +
		// exact re-rank, and the full-coverage exactness check verifies it.
		srcQ, qerr := quant.Encode(ctx, sTab)
		if qerr != nil {
			return nil, fmt.Errorf("ann: encoding SQ8 source table: %w", qerr)
		}
		tgtQ, qerr := quant.Encode(ctx, tTab)
		if qerr != nil {
			return nil, fmt.Errorf("ann: encoding SQ8 target table: %w", qerr)
		}
		if qerr := annSrc.EnableQuant(srcQ, tgtQ, cfg.QuantFactor, true); qerr != nil {
			return nil, fmt.Errorf("ann: enabling quantized slabs: %w", qerr)
		}
		cfg.logf("  ann quant: SQ8 slabs enabled (%s GiB of codes)", gb(srcQ.SizeBytes()+tgtQ.SizeBytes()))
	}
	cfg.logf("  ann train: k=%d in %v (%s GiB of indexes)", k, train.Round(time.Millisecond), gb(annSrc.IndexBytes()))
	annEngine := "ann+sparse"
	rerankF := 0
	if cfg.QuantANN {
		annEngine = "ann+quant"
		rerankF = cfg.QuantFactor
		if rerankF == 0 {
			rerankF = quant.DefaultRerankFactor
		}
	}
	env.Record(Record{
		Name:       fmt.Sprintf("ANN/train/k=%d/n=%d", k, rows),
		NsPerOp:    train.Nanoseconds(),
		BytesPerOp: annSrc.IndexBytes(),
		Features:   &RecordFeatures{SrcRows: rows, TgtRows: cols, Dim: dim, Engine: annEngine, Cand: c, Clusters: k},
	})

	probes := []int{}
	if cfg.ANNNProbe > 0 {
		probes = []int{min(cfg.ANNNProbe, k)}
	} else {
		for np := 1; np < k; np *= 4 {
			probes = append(probes, np)
		}
		probes = append(probes, k)
	}

	t := &Table{
		ID: "ann",
		Title: fmt.Sprintf("IVF candidate generation vs exact build on %s (RREA, %d×%d, C=%d, k=%d)",
			prof.Name, rows, cols, c, k),
		Columns: []string{"Recall@C", "Build(s)", "Speedup", "Hits@1", "ΔHits@1"},
	}
	t.AddRow("exact", "1.000", secs(exactBuild.Seconds()), "1.0×", f3(exactMetrics.Recall), "—")

	type point struct {
		np      int
		recall  float64
		total   time.Duration
		speedup float64
		hits    float64
	}
	var best *point
	for _, np := range probes {
		view := annSrc.WithNProbe(np)
		runtime.GC()
		t0 = time.Now()
		g, err := view.ProduceCandGraph(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("ann: nprobe=%d: %w", np, err)
		}
		build := time.Since(t0)
		recall := graphRecall(exactG, g)
		if np == k && recall != 1 {
			return nil, fmt.Errorf("ann: full coverage (nprobe=%d=k) recall %.6f != 1: exactness contract broken", np, recall)
		}
		// The matcher rebuilds graphs inside its own timed run; giving the
		// exact run's context the ANN view is all it takes to reroute it.
		mctx := *run.Ctx
		mctx.Stream = view
		annRun := &entmatcher.Run{Task: run.Task, Stream: run.Stream, Ctx: &mctx}
		res, metrics, err := matchBudgeted(cfg, env, annRun, entmatcher.NewRInfSparse(c))
		if err != nil {
			return nil, fmt.Errorf("ann: RInf (nprobe=%d): %w", np, err)
		}
		// The honest speedup charges the (amortizable) training to every
		// sweep point; the per-query build time is in the records.
		total := build + train
		speedup := exactBuild.Seconds() / total.Seconds()
		delta := metrics.Recall - exactMetrics.Recall
		t.AddRow(fmt.Sprintf("nprobe=%d", np),
			f3(recall), secs(total.Seconds()), fmt.Sprintf("%.1f×", speedup),
			f3(metrics.Recall), pct(delta))
		feats := &RecordFeatures{SrcRows: rows, TgtRows: cols, Dim: dim, Engine: annEngine,
			Cand: c, Clusters: k, NProbe: np, RerankFactor: rerankF}
		env.Record(Record{
			Name:       fmt.Sprintf("ANN/graph/nprobe=%d/C=%d/n=%d", np, c, rows),
			NsPerOp:    build.Nanoseconds(),
			BytesPerOp: annSrc.IndexBytes() + g.SizeBytes(),
			Hits1:      recall,
			Features:   feats,
		})
		env.Record(Record{
			Name:     fmt.Sprintf("ANN/RInf/nprobe=%d/C=%d/n=%d", np, c, rows),
			NsPerOp:  res.Elapsed.Nanoseconds(),
			Hits1:    metrics.Recall,
			Features: feats,
		})
		cfg.logf("  ann nprobe=%d: recall=%.3f build=%v (+train=%v) RInf Hits@1=%.3f (%.1fx exact build)",
			np, recall, build.Round(time.Millisecond), total.Round(time.Millisecond), metrics.Recall, speedup)
		p := point{np: np, recall: recall, total: total, speedup: speedup, hits: metrics.Recall}
		if best == nil || (p.recall >= 0.98 && (best.recall < 0.98 || p.speedup > best.speedup)) ||
			(p.recall < 0.98 && best.recall < 0.98 && p.recall > best.recall) {
			best = &p
		}
	}
	if best != nil {
		env.Summarize(fmt.Sprintf("ANN_C%d_n%d", c, rows),
			fmt.Sprintf("nprobe=%d/%d: %.1fx faster graph build than exact (train included), recall@%d %.3f, RInf Hits@1 %+.1f pts",
				best.np, k, best.speedup, c, best.recall, 100*(best.hits-exactMetrics.Recall)))
	}
	t.AddNote("Build(s) for sweep rows = forward top-C queries + the one-off k-means training (shared by all rows; query-only times are in the -json records)")
	t.AddNote("the nprobe=%d row scans every cell: its graph is bit-identical to the exact build (verified during the run)", k)
	t.AddNote("Hits@1 is sparse RInf end-to-end on the approximate graphs, matcher time excluded from Build(s)")

	t2, err := runANNClustered(cfg, env, rows, c)
	if err != nil {
		return nil, err
	}
	return []*Table{t, t2}, nil
}

// runANNClustered is the capability probe that separates the index from the
// encoder: the same sweep on a synthetic clustered embedding table of the
// same size (mixture of Gaussians on the sphere, planted 1-to-1 alignment).
// The DWY sweep above measures IVF on what our synthetic encoders actually
// emit — sparse-KG propagation profiles whose deep top-C ranks sit in a
// high-dimensional noise bulk that caps recall near the scanned fraction. On
// clusterable geometry (what trained encoders produce on dense KGs, and what
// the ANN literature assumes) the same index reaches the classic operating
// points: ≥0.98 recall@C at a small fraction of the exhaustive build time.
func runANNClustered(cfg *Config, env *Env, n, c int) (*Table, error) {
	ctx := context.Background()
	const (
		dim     = 128  // matches the fused encoder width (2×64)
		spread  = 0.5  // within-cluster noise around each center
		pairGap = 0.35 // extra noise between a point and its gold twin
	)
	centers := max(8, n/250)
	rng := rand.New(rand.NewSource(77))
	ctrs := matrix.New(centers, dim)
	for i := 0; i < centers; i++ {
		row := ctrs.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		normalizeRow(row)
	}
	srcTab, tgtTab := matrix.New(n, dim), matrix.New(n, dim)
	scale := 1 / math.Sqrt(float64(dim))
	for i := 0; i < n; i++ {
		ctr := ctrs.Row(rng.Intn(centers))
		s, t := srcTab.Row(i), tgtTab.Row(i)
		for j := range s {
			s[j] = ctr[j] + spread*rng.NormFloat64()*scale
		}
		normalizeRow(s)
		for j := range t {
			t[j] = s[j] + pairGap*rng.NormFloat64()*scale
		}
		normalizeRow(t)
	}
	st, err := sim.NewStream(srcTab, tgtTab, sim.Cosine)
	if err != nil {
		return nil, err
	}
	if c > n {
		c = n
	}

	runtime.GC()
	t0 := time.Now()
	exactG, err := matrix.BuildCandGraph(ctx, st, c)
	if err != nil {
		return nil, fmt.Errorf("ann clustered: exact build: %w", err)
	}
	exactBuild := time.Since(t0)
	exactHits, err := rinfHits1(st, c)
	if err != nil {
		return nil, err
	}
	env.Record(Record{
		Name:       fmt.Sprintf("ANN/clustered/exact/build/C=%d/n=%d", c, n),
		NsPerOp:    exactBuild.Nanoseconds(),
		BytesPerOp: exactG.SizeBytes(),
		Hits1:      1,
		Features:   &RecordFeatures{SrcRows: n, TgtRows: n, Dim: dim, Engine: "sparse", Cand: c},
	})
	cfg.logf("  ann clustered exact: build %v, RInf Hits@1=%.3f", exactBuild.Round(time.Millisecond), exactHits)

	pTab, qTab := st.PreparedTables()
	annSrc, err := ann.NewSource(st, pTab, qTab, ann.Config{Clusters: cfg.ANNClusters, Seed: 1})
	if err != nil {
		return nil, err
	}
	runtime.GC()
	t0 = time.Now()
	if err := annSrc.BuildIndexes(ctx, true); err != nil {
		return nil, fmt.Errorf("ann clustered: training: %w", err)
	}
	train := time.Since(t0)
	fwdIdx, err := annSrc.ForwardIndex(ctx)
	if err != nil {
		return nil, err
	}
	k := fwdIdx.Clusters()
	env.Record(Record{
		Name:       fmt.Sprintf("ANN/clustered/train/k=%d/n=%d", k, n),
		NsPerOp:    train.Nanoseconds(),
		BytesPerOp: annSrc.IndexBytes(),
		Features:   &RecordFeatures{SrcRows: n, TgtRows: n, Dim: dim, Engine: "ann+sparse", Cand: c, Clusters: k},
	})

	t := &Table{
		ID: "ann-clustered",
		Title: fmt.Sprintf("IVF capability probe on clustered geometry (%d×%d, d=%d, %d planted clusters, C=%d, k=%d)",
			n, n, dim, centers, c, k),
		Columns: []string{"Recall@C", "Build(s)", "Speedup", "Hits@1", "ΔHits@1"},
	}
	t.AddRow("exact", "1.000", secs(exactBuild.Seconds()), "1.0×", f3(exactHits), "—")

	type point struct {
		np      int
		recall  float64
		speedup float64
		hits    float64
	}
	var best *point
	for np := 1; np <= k && np <= 32; np *= 2 {
		view := annSrc.WithNProbe(np)
		runtime.GC()
		t0 = time.Now()
		g, err := view.ProduceCandGraph(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("ann clustered: nprobe=%d: %w", np, err)
		}
		build := time.Since(t0)
		recall := graphRecall(exactG, g)
		hits, err := rinfHits1(view, c)
		if err != nil {
			return nil, err
		}
		total := build + train
		speedup := exactBuild.Seconds() / total.Seconds()
		delta := hits - exactHits
		t.AddRow(fmt.Sprintf("nprobe=%d", np),
			f3(recall), secs(total.Seconds()), fmt.Sprintf("%.1f×", speedup), f3(hits), pct(delta))
		feats := &RecordFeatures{SrcRows: n, TgtRows: n, Dim: dim, Engine: "ann+sparse", Cand: c, Clusters: k, NProbe: np}
		env.Record(Record{
			Name:       fmt.Sprintf("ANN/clustered/graph/nprobe=%d/C=%d/n=%d", np, c, n),
			NsPerOp:    build.Nanoseconds(),
			BytesPerOp: annSrc.IndexBytes() + g.SizeBytes(),
			Hits1:      recall,
			Features:   feats,
		})
		env.Record(Record{
			Name:     fmt.Sprintf("ANN/clustered/RInf/nprobe=%d/C=%d/n=%d", np, c, n),
			Hits1:    hits,
			Features: feats,
		})
		cfg.logf("  ann clustered nprobe=%d: recall=%.3f build=%v (+train=%v) RInf Hits@1=%.3f (%.1fx exact build)",
			np, recall, build.Round(time.Millisecond), total.Round(time.Millisecond), hits, speedup)
		p := point{np: np, recall: recall, speedup: speedup, hits: hits}
		if best == nil || (p.recall >= 0.98 && (best.recall < 0.98 || p.speedup > best.speedup)) ||
			(p.recall < 0.98 && best.recall < 0.98 && p.recall > best.recall) {
			best = &p
		}
	}
	if best != nil {
		env.Summarize(fmt.Sprintf("ANN_clustered_C%d_n%d", c, n),
			fmt.Sprintf("nprobe=%d/%d: %.1fx faster graph build than exact (train included), recall@%d %.3f, RInf Hits@1 %+.1f pts",
				best.np, k, best.speedup, c, best.recall, 100*(best.hits-exactHits)))
	}
	t.AddNote("same index, same sweep as the DWY table, but on mixture-of-Gaussians embeddings with a planted alignment: the recall gap between the two tables is encoder geometry, not the index")
	t.AddNote("Hits@1 is sparse RInf against the planted 1-to-1 alignment")
	return t, nil
}

// rinfHits1 runs the sparse RInf matcher on the source and scores its pairs
// against the planted identity alignment.
func rinfHits1(src matrix.TileSource, c int) (float64, error) {
	res, err := core.NewRInfSparse(c).Match(&core.Context{Stream: src})
	if err != nil {
		return 0, err
	}
	rows, _ := src.Dims()
	if rows == 0 {
		return 0, nil
	}
	hits := 0
	for _, p := range res.Pairs {
		if p.Source == p.Target {
			hits++
		}
	}
	return float64(hits) / float64(rows), nil
}

// normalizeRow scales a vector to unit L2 norm (no-op on zero rows).
func normalizeRow(row []float64) {
	var s float64
	for _, v := range row {
		s += v * v
	}
	if s <= 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for j := range row {
		row[j] *= inv
	}
}

// graphRecall returns the fraction of exact candidate edges the approximate
// graph recovered (micro-averaged over all rows).
func graphRecall(exact, approx *matrix.CandGraph) float64 {
	var hit, total int
	seen := make(map[int32]bool)
	for i := 0; i < exact.Rows(); i++ {
		ej, _ := exact.Row(i)
		aj, _ := approx.Row(i)
		total += len(ej)
		for k := range seen {
			delete(seen, k)
		}
		for _, j := range aj {
			seen[j] = true
		}
		for _, j := range ej {
			if seen[j] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
