package embed

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"entmatcher/internal/matrix"
)

func TestEmbeddingTableRoundTrip(t *testing.T) {
	pair := testPair(t)
	emb, err := Encode(pair, DefaultConfig(ModelGCN))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, pair.Source, emb.Source); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(&buf, pair.Source)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back, emb.Source, 1e-12) {
		t.Fatal("round trip changed embeddings")
	}
}

func TestWriteTableRowMismatch(t *testing.T) {
	pair := testPair(t)
	var buf bytes.Buffer
	if err := WriteTable(&buf, pair.Source, matrix.New(3, 4)); err == nil {
		t.Fatal("row mismatch accepted")
	}
}

func TestReadTableErrors(t *testing.T) {
	pair := testPair(t)
	g := pair.Source
	e0 := g.EntityName(0)
	e1 := g.EntityName(1)
	cases := map[string]string{
		"unknown entity":  "nope 1 2\n",
		"no components":   e0 + "\n",
		"dim mismatch":    e0 + " 1 2\n" + e1 + " 1 2 3\n",
		"duplicate":       e0 + " 1 2\n" + e0 + " 3 4\n",
		"bad float":       e0 + " abc\n",
		"empty file":      "",
		"missing entries": e0 + " 1 2\n", // covers only one entity
	}
	for name, input := range cases {
		if _, err := ReadTable(strings.NewReader(input), g); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestSaveLoadFiles(t *testing.T) {
	pair := testPair(t)
	emb, err := Encode(pair, DefaultConfig(ModelRREA))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "src.emb")
	tgtPath := filepath.Join(dir, "tgt.emb")
	if err := Save(srcPath, tgtPath, pair, emb); err != nil {
		t.Fatal(err)
	}
	back, err := Load(srcPath, tgtPath, pair)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back.Source, emb.Source, 1e-12) ||
		!matrix.EqualApprox(back.Target, emb.Target, 1e-12) {
		t.Fatal("file round trip changed embeddings")
	}
	if _, err := Load(filepath.Join(dir, "missing"), tgtPath, pair); err == nil {
		t.Fatal("missing source file accepted")
	}
}
