// Package snapshot persists prepared matching state — the unit-normalized
// embedding tables the similarity stream scores with, the entity name
// vocabularies, and optionally the IVF index slabs — in a versioned,
// integrity-checked binary format, so a long-lived server (cmd/entserver) or
// a repeated benchmark run loads in seconds what preparation recomputes in
// minutes.
//
// # Format
//
// A snapshot file is, in order:
//
//	header   (24 B)  magic "ENTSNAP\x01", format version, section count
//	payloads         one blob per section, each 8-byte aligned
//	index            32 B per section: kind, offset, length, CRC32C
//	footer   (32 B)  index offset/length, index CRC32C, version echo,
//	                 tail magic "PANSTNE\x01"
//
// Every payload carries its own CRC32C (Castagnoli) in the index, the index
// carries its own CRC in the footer, and the footer sits at the very end of
// the file — so a truncated or torn file fails the tail-magic/extent check,
// a bit flip anywhere fails a checksum, and a version skew fails the header
// check, each with a distinct typed error. Loading never trusts a length or
// offset it has not bounds-checked, and Write goes temp file → fsync →
// atomic rename, so a crash mid-write can never leave a half-written
// snapshot visible under the target path.
//
// The layout is mmap-friendly: numeric slabs are little-endian, 8-byte
// aligned, and contiguous per section. The portable loader copies them into
// Go slices; a platform mmap loader could alias them in place.
package snapshot

import (
	"errors"
	"fmt"

	"entmatcher/internal/ann"
	"entmatcher/internal/matrix"
	"entmatcher/internal/quant"
)

// Version is the current format version. A file with any other version is
// rejected with ErrVersion: format evolution is explicit, never guessed.
const Version = 1

// DefaultMaxBytes bounds how large a file Load will read — an integrity
// guard against serving a path that points at something absurd (or a
// corrupted length field upstream), not a statement about real corpus size;
// LoadLimit lifts it for genuinely bigger snapshots.
const DefaultMaxBytes = 8 << 30

var (
	headMagic = [8]byte{'E', 'N', 'T', 'S', 'N', 'A', 'P', 1}
	tailMagic = [8]byte{'P', 'A', 'N', 'S', 'T', 'N', 'E', 1}
)

// Typed load errors, for errors.Is dispatch. Every way a snapshot can be
// bad maps to exactly one of these; Load never returns partially decoded
// data alongside them.
var (
	// ErrNotSnapshot reports a file that does not begin with the snapshot
	// magic — not ours, or overwritten.
	ErrNotSnapshot = errors.New("snapshot: bad magic, not a snapshot file")
	// ErrVersion reports a format version this build does not speak.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated reports a file that ends before its own structure does —
	// a torn final write, a partial copy, or a crashed non-atomic writer.
	ErrTruncated = errors.New("snapshot: truncated or torn snapshot")
	// ErrChecksum reports a CRC32C mismatch: the bytes changed after they
	// were written.
	ErrChecksum = errors.New("snapshot: checksum mismatch, corrupt snapshot")
	// ErrMalformed reports structure that checksums correctly but violates
	// the format contract (overlapping sections, impossible dimensions,
	// duplicate or unknown section kinds, inconsistent metadata).
	ErrMalformed = errors.New("snapshot: malformed snapshot")
	// ErrTooLarge reports a file or section larger than the loader's limit.
	ErrTooLarge = errors.New("snapshot: exceeds size limit")
	// ErrMismatch reports a structurally valid snapshot that does not match
	// what the caller asked for — wrong dataset, wrong evaluation setting,
	// wrong metric, or an ANN cluster count that contradicts the requested
	// configuration. Callers reject instead of silently rebuilding.
	ErrMismatch = errors.New("snapshot: snapshot does not match the requested configuration")
	// ErrMmapUnsupported reports that this platform or build cannot alias
	// table sections in place (see Reader.MapTable); callers fall back to
	// the chunked-ReadAt slab view.
	ErrMmapUnsupported = errors.New("snapshot: mmap table aliasing unsupported on this platform/build")
)

// SectionKind identifies one section of the file.
type SectionKind uint32

// The section kinds of format version 1.
const (
	SectionMeta     SectionKind = 1 // JSON metadata
	SectionSrcTable SectionKind = 2 // prepared source embedding table
	SectionTgtTable SectionKind = 3 // prepared target embedding table
	SectionSrcVocab SectionKind = 4 // source entity names, one per table row
	SectionTgtVocab SectionKind = 5 // target entity names, one per table row
	SectionIVFFwd   SectionKind = 6 // forward IVF index (over the target table)
	SectionIVFRev   SectionKind = 7 // reverse IVF index (over the source table)
	SectionSQ8Src   SectionKind = 8 // SQ8 codes of the source table
	SectionSQ8Tgt   SectionKind = 9 // SQ8 codes of the target table

	// The SQ8 sections are OPTIONAL additions within format version 1: a
	// version-1 file without them decodes exactly as before, so snapshots
	// written by earlier builds keep loading. A file carrying them is only
	// readable by builds that know kinds 8/9 — older loaders reject the
	// unknown kind with ErrMalformed rather than silently dropping the
	// quantized tables.
)

// String names the kind for error messages.
func (k SectionKind) String() string {
	switch k {
	case SectionMeta:
		return "meta"
	case SectionSrcTable:
		return "src-table"
	case SectionTgtTable:
		return "tgt-table"
	case SectionSrcVocab:
		return "src-vocab"
	case SectionTgtVocab:
		return "tgt-vocab"
	case SectionIVFFwd:
		return "ivf-fwd"
	case SectionIVFRev:
		return "ivf-rev"
	case SectionSQ8Src:
		return "sq8-src"
	case SectionSQ8Tgt:
		return "sq8-tgt"
	default:
		return fmt.Sprintf("kind(%d)", uint32(k))
	}
}

// SectionError locates a typed error in a specific section of the file.
type SectionError struct {
	Kind   SectionKind
	Offset int64
	Err    error
}

// Error formats the location and cause.
func (e *SectionError) Error() string {
	return fmt.Sprintf("snapshot: section %v at offset %d: %v", e.Kind, e.Offset, e.Err)
}

// Unwrap exposes the typed cause to errors.Is.
func (e *SectionError) Unwrap() error { return e.Err }

// ANNMeta records the configuration the persisted IVF indexes were built
// with, so a load can verify the caller's requested index parameters against
// what the slabs actually embody.
type ANNMeta struct {
	Clusters   int   `json:"clusters"`
	NProbe     int   `json:"nprobe"`
	SampleSize int   `json:"sample_size"`
	Iters      int   `json:"iters"`
	Seed       int64 `json:"seed"`
}

// QuantMeta records the quantized-scan configuration the persisted SQ8
// tables were written under, so a load can verify the caller's requested
// quantization against what the snapshot carries.
type QuantMeta struct {
	// RerankFactor is the pool over-fetch multiplier recorded at save time
	// (0 = the default); the server and a loading pipeline may override it
	// per query — it parameterizes the scan, not the codes.
	RerankFactor int `json:"rerank_factor"`
	// Rerank records whether the saving run used the exact float64 re-rank
	// (true) or the quantized-only escape hatch.
	Rerank bool `json:"rerank"`
}

// Meta is the snapshot's JSON metadata section: enough context to verify a
// snapshot against the run that wants to use it, without re-deriving
// anything from the payload sections.
type Meta struct {
	// Tool names the producer, e.g. "entmatcher".
	Tool string `json:"tool"`
	// Metric is the sim.Metric the tables are prepared for.
	Metric uint32 `json:"metric"`
	// Setting and Features echo the pipeline configuration whose task
	// selected the table rows; a load under a different configuration is a
	// mismatch, not a reinterpretation.
	Setting  uint32 `json:"setting"`
	Features uint32 `json:"features"`
	// SrcRows, TgtRows, Dim mirror the table shapes; the loader cross-checks
	// them against the decoded sections.
	SrcRows int `json:"src_rows"`
	TgtRows int `json:"tgt_rows"`
	Dim     int `json:"dim"`
	// ANN is non-nil exactly when IVF sections are present.
	ANN *ANNMeta `json:"ann,omitempty"`
	// Quant is non-nil exactly when SQ8 sections are present.
	Quant *QuantMeta `json:"quant,omitempty"`
	// CreatedUnix is the write time (seconds); informational only.
	CreatedUnix int64 `json:"created_unix"`
}

// Snapshot is the in-memory form of a snapshot file.
type Snapshot struct {
	Meta     Meta
	SrcTable *matrix.Dense // prepared rows (unit-normalized for cosine)
	TgtTable *matrix.Dense
	SrcVocab []string     // entity name per source table row
	TgtVocab []string     // entity name per target table row
	FwdIndex *ann.IVFData // nil when no index was persisted
	RevIndex *ann.IVFData // nil when only the forward index was persisted
	SrcQuant *quant.TableData // nil when no SQ8 tables were persisted
	TgtQuant *quant.TableData // always present together with SrcQuant
}

// Validate cross-checks the snapshot's internal consistency: table shapes
// against metadata, vocabulary lengths against table rows, index slabs
// against the tables they claim to cover (including the full structural
// invariants ann.FromData enforces). Both the writer and the loader call it,
// so neither a bad producer nor a checksum-passing-but-inconsistent file
// gets through.
func (s *Snapshot) Validate() error {
	if s.SrcTable == nil || s.TgtTable == nil {
		return fmt.Errorf("%w: missing embedding table", ErrMalformed)
	}
	if s.SrcTable.Cols() != s.TgtTable.Cols() {
		return fmt.Errorf("%w: table dims differ: %d vs %d", ErrMalformed, s.SrcTable.Cols(), s.TgtTable.Cols())
	}
	if s.SrcTable.Rows() == 0 || s.TgtTable.Rows() == 0 || s.SrcTable.Cols() == 0 {
		return fmt.Errorf("%w: empty embedding table (%d×%d source, %d×%d target)", ErrMalformed,
			s.SrcTable.Rows(), s.SrcTable.Cols(), s.TgtTable.Rows(), s.TgtTable.Cols())
	}
	if s.Meta.SrcRows != s.SrcTable.Rows() || s.Meta.TgtRows != s.TgtTable.Rows() || s.Meta.Dim != s.SrcTable.Cols() {
		return fmt.Errorf("%w: metadata says %d/%d rows × %d dims, tables are %d/%d × %d", ErrMalformed,
			s.Meta.SrcRows, s.Meta.TgtRows, s.Meta.Dim, s.SrcTable.Rows(), s.TgtTable.Rows(), s.SrcTable.Cols())
	}
	if len(s.SrcVocab) != s.SrcTable.Rows() {
		return fmt.Errorf("%w: %d source names for %d table rows", ErrMalformed, len(s.SrcVocab), s.SrcTable.Rows())
	}
	if len(s.TgtVocab) != s.TgtTable.Rows() {
		return fmt.Errorf("%w: %d target names for %d table rows", ErrMalformed, len(s.TgtVocab), s.TgtTable.Rows())
	}
	if (s.FwdIndex != nil) != (s.Meta.ANN != nil) {
		return fmt.Errorf("%w: index sections and ANN metadata disagree", ErrMalformed)
	}
	if s.RevIndex != nil && s.FwdIndex == nil {
		return fmt.Errorf("%w: reverse index without a forward index", ErrMalformed)
	}
	if s.FwdIndex != nil {
		if s.FwdIndex.N != s.TgtTable.Rows() || s.FwdIndex.Dim != s.TgtTable.Cols() {
			return fmt.Errorf("%w: forward index covers %d×%d but target table is %d×%d", ErrMalformed,
				s.FwdIndex.N, s.FwdIndex.Dim, s.TgtTable.Rows(), s.TgtTable.Cols())
		}
		if s.Meta.ANN.Clusters != s.FwdIndex.K {
			return fmt.Errorf("%w: ANN metadata says %d clusters, forward index has %d", ErrMalformed,
				s.Meta.ANN.Clusters, s.FwdIndex.K)
		}
		if _, err := ann.FromData(s.FwdIndex); err != nil {
			return fmt.Errorf("%w: forward index: %v", ErrMalformed, err)
		}
	}
	if s.RevIndex != nil {
		if s.RevIndex.N != s.SrcTable.Rows() || s.RevIndex.Dim != s.SrcTable.Cols() {
			return fmt.Errorf("%w: reverse index covers %d×%d but source table is %d×%d", ErrMalformed,
				s.RevIndex.N, s.RevIndex.Dim, s.SrcTable.Rows(), s.SrcTable.Cols())
		}
		if _, err := ann.FromData(s.RevIndex); err != nil {
			return fmt.Errorf("%w: reverse index: %v", ErrMalformed, err)
		}
	}
	if (s.SrcQuant != nil) != (s.TgtQuant != nil) {
		return fmt.Errorf("%w: SQ8 sections must cover both tables or neither", ErrMalformed)
	}
	if (s.SrcQuant != nil) != (s.Meta.Quant != nil) {
		return fmt.Errorf("%w: SQ8 sections and quant metadata disagree", ErrMalformed)
	}
	if s.SrcQuant != nil {
		if s.SrcQuant.Rows != s.SrcTable.Rows() || s.SrcQuant.Dim != s.SrcTable.Cols() {
			return fmt.Errorf("%w: SQ8 source codes cover %d×%d but source table is %d×%d", ErrMalformed,
				s.SrcQuant.Rows, s.SrcQuant.Dim, s.SrcTable.Rows(), s.SrcTable.Cols())
		}
		if _, err := quant.FromData(s.SrcQuant); err != nil {
			return fmt.Errorf("%w: SQ8 source codes: %v", ErrMalformed, err)
		}
		if s.TgtQuant.Rows != s.TgtTable.Rows() || s.TgtQuant.Dim != s.TgtTable.Cols() {
			return fmt.Errorf("%w: SQ8 target codes cover %d×%d but target table is %d×%d", ErrMalformed,
				s.TgtQuant.Rows, s.TgtQuant.Dim, s.TgtTable.Rows(), s.TgtTable.Cols())
		}
		if _, err := quant.FromData(s.TgtQuant); err != nil {
			return fmt.Errorf("%w: SQ8 target codes: %v", ErrMalformed, err)
		}
		if s.Meta.Quant.RerankFactor < 0 {
			return fmt.Errorf("%w: negative rerank factor %d", ErrMalformed, s.Meta.Quant.RerankFactor)
		}
	}
	return nil
}
