package eval

import (
	"math"
	"testing"

	"entmatcher/internal/core"
	"entmatcher/internal/datagen"
	"entmatcher/internal/kg"
	"entmatcher/internal/matrix"
)

func TestScorePerfect(t *testing.T) {
	gold := []core.Pair{{Source: 0, Target: 0}, {Source: 1, Target: 1}}
	m := Score(gold, gold)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("perfect prediction scored %v", m)
	}
}

func TestScorePartial(t *testing.T) {
	gold := []core.Pair{{Source: 0, Target: 0}, {Source: 1, Target: 1}, {Source: 2, Target: 2}, {Source: 3, Target: 3}}
	pred := []core.Pair{{Source: 0, Target: 0}, {Source: 1, Target: 9}}
	m := Score(pred, gold)
	if m.Precision != 0.5 {
		t.Fatalf("precision = %v", m.Precision)
	}
	if m.Recall != 0.25 {
		t.Fatalf("recall = %v", m.Recall)
	}
	wantF1 := 2 * 0.5 * 0.25 / 0.75
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", m.F1, wantF1)
	}
}

func TestScoreDuplicatePredictionsCountOnce(t *testing.T) {
	gold := []core.Pair{{Source: 0, Target: 0}}
	pred := []core.Pair{{Source: 0, Target: 0}, {Source: 0, Target: 0}}
	m := Score(pred, gold)
	if m.Predicted != 1 || m.Precision != 1 {
		t.Fatalf("duplicates mishandled: %v", m)
	}
}

func TestScoreEmpty(t *testing.T) {
	m := Score(nil, nil)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("empty score = %v", m)
	}
}

func TestMetricsString(t *testing.T) {
	m := Score([]core.Pair{{Source: 0, Target: 0}}, []core.Pair{{Source: 0, Target: 0}})
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func onePair(t *testing.T) *kg.Pair {
	t.Helper()
	pair, err := datagen.Generate(datagen.DBP15KZhEn.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func TestOneToOneTaskShape(t *testing.T) {
	pair := onePair(t)
	task, err := OneToOneTask(pair)
	if err != nil {
		t.Fatal(err)
	}
	n := pair.Split.Test.Len()
	if len(task.SourceIDs) != n || len(task.TargetIDs) != n || len(task.Gold) != n {
		t.Fatalf("task sizes %d/%d/%d, want %d", len(task.SourceIDs), len(task.TargetIDs), len(task.Gold), n)
	}
	for i, g := range task.Gold {
		if g.Source != i || g.Target != i {
			t.Fatalf("gold %d = %+v, want diagonal", i, g)
		}
	}
}

func TestOneToOneTaskRequiresTestLinks(t *testing.T) {
	pair := onePair(t)
	pair.Split.Test.Links = nil
	if _, err := OneToOneTask(pair); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestOneToOneTaskRejectsMultiLinks(t *testing.T) {
	pair := onePair(t)
	l := pair.Split.Test.Links[0]
	pair.Split.Test.Add(l.Source, l.Target+1)
	if _, err := OneToOneTask(pair); err == nil {
		t.Fatal("non 1-to-1 test set accepted")
	}
}

func TestUnmatchableTaskIncludesExtras(t *testing.T) {
	pair := onePair(t)
	task, err := UnmatchableTask(pair)
	if err != nil {
		t.Fatal(err)
	}
	nTest := pair.Split.Test.Len()
	prof := datagen.DBP15KZhEn.Scaled(0.02)
	wantRows := nTest + prof.ExtraSource
	if len(task.SourceIDs) != wantRows {
		t.Fatalf("rows = %d, want %d", len(task.SourceIDs), wantRows)
	}
	if len(task.TargetIDs) != nTest+prof.ExtraTarget {
		t.Fatalf("cols = %d", len(task.TargetIDs))
	}
	// Gold unchanged: only the test links.
	if len(task.Gold) != nTest {
		t.Fatalf("gold = %d", len(task.Gold))
	}
	// Every appended row must be an unlinked entity.
	linked := pair.AllLinks().SourceSet()
	for _, id := range task.SourceIDs[nTest:] {
		if linked[id] {
			t.Fatalf("linked entity %d treated as unmatchable", id)
		}
	}
}

func TestNonOneToOneTask(t *testing.T) {
	pair, err := datagen.GenerateNonOneToOne(datagen.FBDBPMul.Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	task, err := NonOneToOneTask(pair)
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Gold) != pair.Split.Test.Len() {
		t.Fatalf("gold %d, want %d", len(task.Gold), pair.Split.Test.Len())
	}
	// Distinct rows ≤ gold links (duplicates collapse).
	if len(task.SourceIDs) > len(task.Gold) {
		t.Fatalf("rows %d exceed links %d", len(task.SourceIDs), len(task.Gold))
	}
	// All gold indices must be in range.
	for _, g := range task.Gold {
		if g.Source < 0 || g.Source >= len(task.SourceIDs) || g.Target < 0 || g.Target >= len(task.TargetIDs) {
			t.Fatalf("gold out of range: %+v", g)
		}
	}
	// Some row must own several gold columns.
	perRow := make(map[int]int)
	multi := false
	for _, g := range task.Gold {
		perRow[g.Source]++
		if perRow[g.Source] > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("no 1-to-many gold rows in non 1-to-1 task")
	}
}

func TestValidationTaskFor(t *testing.T) {
	pair := onePair(t)
	task, err := ValidationTaskFor(pair)
	if err != nil {
		t.Fatal(err)
	}
	if len(task.SourceIDs) != pair.Split.Valid.Len() {
		t.Fatalf("validation rows = %d", len(task.SourceIDs))
	}
	pair.Split.Valid.Links = nil
	if _, err := ValidationTaskFor(pair); err == nil {
		t.Fatal("empty validation set accepted")
	}
}

func TestLocalAdjacency(t *testing.T) {
	g := kg.NewGraph("g")
	g.AddTripleNames("a", "r", "b")
	g.AddTripleNames("b", "r", "c")
	a, _ := g.EntityID("a")
	b, _ := g.EntityID("b")
	c, _ := g.EntityID("c")
	adj := LocalAdjacency(g, []int{a, c})
	// a's only neighbor is b, which is not in the task → empty.
	if len(adj[0]) != 0 || len(adj[1]) != 0 {
		t.Fatalf("adjacency leaked out-of-task entities: %v", adj)
	}
	adj2 := LocalAdjacency(g, []int{a, b, c})
	if len(adj2[1]) != 2 {
		t.Fatalf("b should neighbor both a and c: %v", adj2)
	}
	_ = b
}

func TestTaskEvaluate(t *testing.T) {
	task := &Task{Gold: []core.Pair{{Source: 0, Target: 0}}}
	res := &core.Result{Pairs: []core.Pair{{Source: 0, Target: 0}}}
	if m := task.Evaluate(res); m.F1 != 1 {
		t.Fatalf("F1 = %v", m.F1)
	}
}

func TestHitsAtK(t *testing.T) {
	s, _ := matrix.NewFromData(2, 3, []float64{
		0.9, 0.5, 0.1, // gold col 1 → rank 2
		0.2, 0.3, 0.8, // gold col 2 → rank 1
	})
	gold := []core.Pair{{Source: 0, Target: 1}, {Source: 1, Target: 2}}
	h1, mrr := HitsAtK(s, gold, 1)
	if h1 != 0.5 {
		t.Fatalf("Hits@1 = %v", h1)
	}
	if math.Abs(mrr-0.75) > 1e-12 {
		t.Fatalf("MRR = %v, want 0.75", mrr)
	}
	h2, _ := HitsAtK(s, gold, 2)
	if h2 != 1 {
		t.Fatalf("Hits@2 = %v", h2)
	}
}

func TestHitsAtKEmptyGold(t *testing.T) {
	s := matrix.New(2, 2)
	h, mrr := HitsAtK(s, nil, 1)
	if h != 0 || mrr != 0 {
		t.Fatalf("empty gold: %v %v", h, mrr)
	}
}
