//go:build race

package server

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count pins are meaningless then.
const raceEnabled = true
