package ann

import (
	"context"
	"math/rand"
	"sort"

	"entmatcher/internal/matrix"
)

// This file holds the coarse quantizer of the IVF index: k-means over a
// deterministic sample of the corpus, seeded with k-means++ (Arthur &
// Vassilvitskii 2007) and refined by parallel Lloyd's iterations. Everything
// is driven by a single seeded rand.Rand plus order-fixed reductions, so a
// (data, config) pair always trains the identical quantizer — the
// determinism contract the conformance suite pins.
//
// Distances use the identity ‖x−c‖² = ‖x‖² + ‖c‖² − 2⟨x,c⟩ so the inner loop
// is the shared matrix.Dot4 kernel (AVX2 on amd64, unrolled scalar
// elsewhere) — the same kernel that scores every streamed tile.

// trainCentroids returns k centroids of data learned on a sampleSize-point
// sample. Callers pass arguments already clamped (1 <= k <= sampleSize <=
// data.Rows()); iters bounds the Lloyd refinement, which stops early once an
// iteration leaves every assignment unchanged.
func trainCentroids(ctx context.Context, data *matrix.Dense, k, sampleSize, iters int, rng *rand.Rand) (*matrix.Dense, error) {
	n, d := data.Rows(), data.Cols()
	sample := data
	if sampleSize < n {
		pick := rng.Perm(n)[:sampleSize]
		// Ascending row order keeps the gather cache-friendly; the sampled
		// set (and hence the trained quantizer) is unaffected.
		sort.Ints(pick)
		sample = data.SelectRows(pick)
	}
	s := sample.Rows()

	// Squared norms of the sample, reused by seeding and assignment.
	snorm := make([]float64, s)
	for i := 0; i < s; i++ {
		row := sample.Row(i)
		snorm[i] = matrix.Dot4(row, row)
	}

	cent := matrix.New(k, d)
	cnormHalf := make([]float64, k)

	// --- k-means++ seeding ---
	// First centroid uniform over the sample; each next one drawn with
	// probability proportional to the squared distance to the nearest chosen
	// centroid. When that distribution degenerates (all remaining mass zero:
	// fewer distinct points than k), fall back to deterministic round-robin
	// over the sample — duplicate centroids then simply yield empty cells.
	first := rng.Intn(s)
	copy(cent.Row(0), sample.Row(first))
	cnormHalf[0] = 0.5 * snorm[first]
	d2 := make([]float64, s)
	for i := 0; i < s; i++ {
		d2[i] = sqDist(snorm[i], sample.Row(i), cent.Row(0), cnormHalf[0])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range d2 {
			total += v
		}
		pick := c % s
		if total > 0 {
			r := rng.Float64() * total
			var acc float64
			pick = s - 1
			for i, v := range d2 {
				acc += v
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(cent.Row(c), sample.Row(pick))
		cnormHalf[c] = 0.5 * snorm[pick]
		for i := 0; i < s; i++ {
			if dd := sqDist(snorm[i], sample.Row(i), cent.Row(c), cnormHalf[c]); dd < d2[i] {
				d2[i] = dd
			}
		}
	}

	// --- Lloyd's refinement ---
	// Assignment is embarrassingly parallel (each point writes its own
	// slot); the centroid update is a sequential sample-order reduction so
	// the sums — and therefore the next centroids — are bit-deterministic
	// regardless of GOMAXPROCS.
	assign := make([]int, s)
	prev := make([]int, s)
	sums := make([]float64, k*d)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		if err := matrix.ParallelRowsCtx(ctx, s, func(i int) {
			assign[i] = nearestCell(sample.Row(i), cent, cnormHalf)
		}); err != nil {
			return nil, err
		}
		if it > 0 {
			changed := false
			for i := range assign {
				if assign[i] != prev[i] {
					changed = true
					break
				}
			}
			if !changed {
				break
			}
		}
		copy(prev, assign)
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < s; i++ {
			c := assign[i]
			acc := sums[c*d : (c+1)*d]
			for x, v := range sample.Row(i) {
				acc[x] += v
			}
			counts[c]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Empty cell: keep the old centroid rather than collapsing
				// the quantizer (standard IVF practice).
				continue
			}
			row := cent.Row(c)
			inv := 1 / float64(counts[c])
			for x := range row {
				row[x] = sums[c*d+x] * inv
			}
			cnormHalf[c] = 0.5 * matrix.Dot4(row, row)
		}
	}
	return cent, nil
}

// TrainCentroids exposes the IVF coarse-quantizer training — k-means++
// seeding plus Lloyd refinement with bit-deterministic reductions — for
// callers outside the index. The shard partitioner (internal/shard) trains
// its co-clustering quantizer through this entry point so shard assignment
// and IVF cell assignment share one code path and one determinism contract.
// Arguments are clamped here: k to [1, n], sampleSize to [k, n], iters to
// at least 1.
func TrainCentroids(ctx context.Context, data *matrix.Dense, k, sampleSize, iters int, seed int64) (*matrix.Dense, error) {
	n := data.Rows()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if sampleSize < k {
		sampleSize = k
	}
	if sampleSize > n {
		sampleSize = n
	}
	if iters < 1 {
		iters = 1
	}
	return trainCentroids(ctx, data, k, sampleSize, iters, rand.New(rand.NewSource(seed)))
}

// CentroidNormsHalf precomputes ‖c‖²/2 per centroid — the constant NearestCell
// folds into its fused-dot comparison.
func CentroidNormsHalf(cent *matrix.Dense) []float64 {
	out := make([]float64, cent.Rows())
	for c := range out {
		row := cent.Row(c)
		out[c] = 0.5 * matrix.Dot4(row, row)
	}
	return out
}

// NearestCell returns the centroid nearest to x (smallest ‖x−c‖², ties to the
// smallest cell id), given the CentroidNormsHalf precomputation.
func NearestCell(x []float64, cent *matrix.Dense, cnormHalf []float64) int {
	return nearestCell(x, cent, cnormHalf)
}

// NearestCells writes the ids of the p nearest centroids to x into dst (which
// must hold p entries), ordered by ascending distance with ties to the
// smallest cell id, and returns dst. It is the multi-probe generalization of
// NearestCell used for shard replication: a source row near a cell boundary
// is matched in its p nearest shards.
func NearestCells(x []float64, cent *matrix.Dense, cnormHalf []float64, dst []int) []int {
	p := len(dst)
	k := cent.Rows()
	if p > k {
		p = k
		dst = dst[:p]
	}
	// Scores are ⟨x,c⟩ − ‖c‖²/2 (maximize); selection sorts the tiny p-set.
	scores := make([]float64, p)
	count := 0
	for c := 0; c < k; c++ {
		sc := matrix.Dot4(x, cent.Row(c)) - cnormHalf[c]
		// Insert into the descending-score prefix; strict > keeps the
		// first-seen (smallest-id) cell ahead on ties.
		pos := count
		for pos > 0 && sc > scores[pos-1] {
			pos--
		}
		if pos >= p {
			continue
		}
		if count < p {
			count++
		}
		copy(scores[pos+1:count], scores[pos:count-1])
		copy(dst[pos+1:count], dst[pos:count-1])
		scores[pos] = sc
		dst[pos] = c
	}
	return dst[:count]
}

// sqDist returns ‖x−c‖² via the norm identity, clamped at zero (the identity
// can go a few ulps negative when x == c).
func sqDist(xnorm float64, x, c []float64, cnormHalf float64) float64 {
	v := xnorm + 2*cnormHalf - 2*matrix.Dot4(x, c)
	if v < 0 {
		return 0
	}
	return v
}

// nearestCell returns the centroid minimizing ‖x−c‖², ties broken by the
// smallest cell id. Minimizing distance is maximizing ⟨x,c⟩ − ‖c‖²/2 (the
// ‖x‖² term is constant per point), so the comparison is one fused dot per
// cell; the strict > keeps the first-seen cell on ties.
func nearestCell(x []float64, cent *matrix.Dense, cnormHalf []float64) int {
	best, bestScore := 0, matrix.Dot4(x, cent.Row(0))-cnormHalf[0]
	for c := 1; c < cent.Rows(); c++ {
		if sc := matrix.Dot4(x, cent.Row(c)) - cnormHalf[c]; sc > bestScore {
			best, bestScore = c, sc
		}
	}
	return best
}
