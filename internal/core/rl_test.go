package core

import (
	"math/rand"
	"testing"
)

func TestRLRejectsBadConfig(t *testing.T) {
	m := NewRL(RLConfig{Candidates: 0})
	if _, err := m.Match(&Context{S: mat(t, []float64{1})}); err == nil {
		t.Fatal("zero candidates accepted")
	}
}

// TestRLExclusivenessSpreadsConflicts: on the conflict instance where
// greedy stacks both sources on one target, the exclusiveness penalty must
// push the second source away.
func TestRLExclusivenessSpreadsConflicts(t *testing.T) {
	s := mat(t,
		[]float64{0.90, 0.30},
		[]float64{0.80, 0.60},
	)
	res, err := NewRL(DefaultRLConfig()).Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	got := pairsBySource(res)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("RL pairs = %v", got)
	}
}

// TestRLPartiallyOneToOne: unlike Hungarian, RL may still emit duplicate
// targets when the evidence overwhelms the penalty — the "Partially" cell
// of Table 2.
func TestRLPartiallyOneToOne(t *testing.T) {
	// Both rows score target 0 at 1.0 and target 1 at -1; the exclusiveness
	// penalty (0.4·occupancy) cannot bridge a 2.0 gap.
	s := mat(t,
		[]float64{1.0, -1.0},
		[]float64{1.0, -1.0},
	)
	cfg := DefaultRLConfig()
	cfg.TuneIterations = 0
	res, err := NewRL(cfg).Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("pairs = %+v", res.Pairs)
	}
	for _, p := range res.Pairs {
		if p.Target != 0 {
			t.Fatalf("RL forced 1-to-1 where evidence said otherwise: %+v", res.Pairs)
		}
	}
}

// TestRLCoherenceBreaksTies: with adjacency information, a target whose
// neighborhood aligns with already-matched neighbors must win a near-tie.
func TestRLCoherenceBreaksTies(t *testing.T) {
	// Rows 0,1: confident diagonal matches (pre-filtered).
	// Row 2: near-tie between columns 2 and 3; column 2 is adjacent to the
	// matches of row 2's neighbors (rows 0 and 1), column 3 is not.
	s := mat(t,
		[]float64{0.99, 0.0, 0.0, 0.0},
		[]float64{0.0, 0.99, 0.0, 0.0},
		[]float64{0.0, 0.0, 0.50, 0.505},
	)
	srcAdj := [][]int{{2}, {2}, {0, 1}}
	tgtAdj := [][]int{{2}, {2}, {0, 1}, {}}
	cfg := DefaultRLConfig()
	cfg.TuneIterations = 0
	res, err := NewRL(cfg).Match(&Context{S: s, SourceAdj: srcAdj, TargetAdj: tgtAdj})
	if err != nil {
		t.Fatal(err)
	}
	if pairsBySource(res)[2] != 2 {
		t.Fatalf("coherence did not rescue the tie: %+v", res.Pairs)
	}
	// Without adjacency the raw score wins and row 2 goes to column 3.
	res2, err := NewRL(cfg).Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if pairsBySource(res2)[2] != 3 {
		t.Fatalf("without adjacency expected raw-score choice: %+v", res2.Pairs)
	}
}

// TestRLTuningUsesValidation: weight tuning on a validation task must not
// crash and must keep or improve the default weights' validation score.
func TestRLTuningUsesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	valid := diagonalish(rng, 25, 0.3, 0.4)
	gold := make([]Pair, 25)
	for i := range gold {
		gold[i] = Pair{Source: i, Target: i}
	}
	test := diagonalish(rng, 40, 0.3, 0.4)
	cfg := DefaultRLConfig()
	cfg.TuneIterations = 15
	m := NewRL(cfg)
	res, err := m.Match(&Context{
		S:     test,
		Valid: &ValidationTask{S: valid, Gold: gold},
		Rand:  rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs)+len(res.Abstained) != 40 {
		t.Fatalf("rows unaccounted: %d pairs + %d abstained", len(res.Pairs), len(res.Abstained))
	}
}

// TestRLConfidentPrefilterCommits: mutual nearest neighbors with a clear
// margin must be matched regardless of the sequential pass.
func TestRLConfidentPrefilterCommits(t *testing.T) {
	s := mat(t,
		[]float64{0.95, 0.05},
		[]float64{0.10, 0.90},
	)
	cfg := DefaultRLConfig()
	cfg.TuneIterations = 0
	res, err := NewRL(cfg).Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	got := pairsBySource(res)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("prefilter missed the confident diagonal: %v", got)
	}
}

// TestRLDeterministicWithFixedSeed: the same context and seed must produce
// the same pairs.
func TestRLDeterministicWithFixedSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := diagonalish(rng, 30, 0.2, 0.4)
	run := func() map[int]int {
		res, err := NewRL(DefaultRLConfig()).Match(&Context{S: s})
		if err != nil {
			t.Fatal(err)
		}
		return pairsBySource(res)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic pair count")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatal("nondeterministic matching")
		}
	}
}

func TestRLDummyAbstention(t *testing.T) {
	s := mat(t,
		[]float64{0.2, 0.5},
		[]float64{0.3, 0.1},
	)
	// Column 1 is a dummy: row 0's best is the dummy → abstain.
	cfg := DefaultRLConfig()
	cfg.TuneIterations = 0
	res, err := NewRL(cfg).Match(&Context{S: s, NumDummies: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Abstained) != 1 || res.Abstained[0] != 0 {
		t.Fatalf("abstained = %v", res.Abstained)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Source != 1 || res.Pairs[0].Target != 0 {
		t.Fatalf("pairs = %+v", res.Pairs)
	}
}
