// Package server implements the hardened alignment server behind
// cmd/entserver. It loads one crash-safe snapshot (internal/snapshot) at
// startup and serves entity-alignment queries over HTTP through the existing
// streaming/ANN machinery:
//
//   - GET  /match/topk  — point lookup: top-k target candidates for one
//     source entity, served from the persisted IVF index when present and
//     degrading to the exact streaming scan when the index fails.
//   - POST /align       — batch job: run a matcher over the whole task
//     through the Fallback degradation ladder (matcher@ann → matcher@exact).
//   - GET  /healthz     — liveness: the process is up.
//   - GET  /readyz      — readiness: snapshot loaded and not draining.
//   - GET  /statsz      — observability counters: cache hits/misses,
//     admission-gate rejections, per-tier served counts (quant/ann/exact).
//
// When the snapshot carries SQ8 sections (entmatcher -quant -save-snapshot),
// both work endpoints gain a quantized top tier: /match/topk scans the int8
// code slabs and re-ranks survivors with the exact float64 kernel (so the
// responses carry the same bits the float tiers would), and /align runs the
// matcher@quant tier above matcher@ann. The quant tier degrades like any
// other — a failure falls through to the float index, then the exact scan.
//
// Robustness contract (see DESIGN.md § 13):
//
//   - Admission gate: at most MaxInFlight requests execute concurrently.
//     Excess load is shed immediately with 429 + Retry-After — the server
//     never queues unboundedly, so overload cannot become an OOM or a
//     latency collapse.
//   - Deadlines: every request runs under RequestTimeout riding the
//     cooperative-cancellation plumbing; a deadline hit returns 504.
//   - Degradation is surfaced, never silent: when a cheaper path answered,
//     the response carries the failed tiers in "degraded_from" (the HTTP
//     analogue of the CLIs' exit code 3; see internal/exitcode).
//   - Panics become 500s: matcher panics are contained by core.SafeMatch
//     and the Fallback ladder, handler panics by the recovery middleware.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"entmatcher"
	"entmatcher/internal/ann"
	"entmatcher/internal/core"
	"entmatcher/internal/matrix"
	"entmatcher/internal/plan"
	"entmatcher/internal/quant"
	"entmatcher/internal/sim"
	"entmatcher/internal/snapshot"
)

// Config tunes the server. Zero values mean the documented defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing /match/topk and /align
	// requests — the admission gate's capacity. Default 16.
	MaxInFlight int
	// RequestTimeout is the per-request deadline. Default 10s.
	RequestTimeout time.Duration
	// CacheSize is the /match/topk LRU capacity in entries. Default 1024.
	CacheSize int
	// MaxK caps the k a /match/topk request may ask for. Default 128.
	MaxK int
	// NProbe overrides the IVF probe count for /match/topk index searches
	// (0 = the snapshot's recorded value, or an auto default).
	NProbe int
	// MaxSnapshotBytes bounds the snapshot file size accepted at load
	// (0 = snapshot.DefaultMaxBytes).
	MaxSnapshotBytes int64
	// MaxBatch bounds how many /match/topk cache misses one coalesced
	// batch may carry. Under concurrent load, misses are collected into a
	// bounded window and served through one register-blocked batch scan
	// per distinct k; identical (row, k) requests are deduplicated
	// singleflight-style. 0 means the default 32; a value <= 1 (after
	// defaulting: pass a negative) disables coalescing entirely and every
	// request walks the searcher ladder alone.
	MaxBatch int
	// MaxWait is how long a batch leader holds its window open for
	// batchmates before executing. Only paid when at least two requests
	// are in flight — a lone request always takes the direct path at zero
	// added latency. Default 500µs.
	MaxWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.MaxK <= 0 {
		c.MaxK = 128
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 500 * time.Microsecond
	}
	return c
}

// TopKSearcher answers point top-k queries for one source row. It is the
// seam the degradation ladder walks — index-backed first, exact scan last —
// and the seam fault-injection tests replace to prove the walk happens.
type TopKSearcher interface {
	// Name labels the searcher in the response's served_by/degraded_from.
	Name() string
	// Search returns the top-k target columns for source row, best first.
	Search(ctx context.Context, row, k int) (matrix.TopK, error)
}

// Option customizes a Server at construction; the With* helpers are the
// fault-injection seams used by the robustness tests.
type Option func(*Server)

// WithPrimarySearcher replaces the primary (index-backed) /match/topk
// searcher. The exact scan stays as the fallback tier, so an injected
// failing searcher exercises the degradation path end to end.
func WithPrimarySearcher(s TopKSearcher) Option {
	return func(srv *Server) { srv.searchers[0] = s }
}

// WithAlignSource replaces the tile source behind the /align ANN tier, so a
// test can make the first tier fail (or succeed) deterministically.
func WithAlignSource(src matrix.TileSource) Option {
	return func(srv *Server) { srv.annSrc = src }
}

// Server is one loaded snapshot plus the HTTP machinery around it. All
// fields are set at construction and immutable afterwards except the
// draining flag and the cache, both safe for concurrent use.
type Server struct {
	cfg      Config
	snap     *snapshot.Snapshot
	stream   *sim.Stream
	annSrc   matrix.TileSource // nil when the snapshot has no index
	quantSrc matrix.TileSource // nil when the snapshot has no SQ8 tables

	searchers []TopKSearcher // walked in order; last is the exact scan
	srcByName map[string]int
	colIDs    []int // 0..cols-1, shared by the exact scans

	// plan is the startup self-configuration: the cost-based planner's
	// decision for the served workload shape, computed from the same
	// calibration the CLIs use. Advisory except for defaultCand; nil when
	// the calibration was unavailable.
	plan        *plan.Plan
	defaultCand int

	cache    *lruCache
	gate     chan struct{}
	coal     *coalescer // nil when request coalescing is disabled
	draining atomic.Bool
	inflight atomic.Int64

	// closer releases the snapshot mapping when the server was built with
	// NewMapped; nil for fully loaded snapshots. mapped reports the mode.
	closer io.Closer
	mapped bool

	// Observability counters behind /statsz and the drain log line.
	cacheHits, cacheMisses                           atomic.Int64
	gateRejections                                   atomic.Int64
	servedQuant, servedANN, servedExact, servedOther atomic.Int64
	batches, batchedQueries, coalescedDup            atomic.Int64
	maxBatchSeen                                     atomic.Int64
}

// Stats is a point-in-time copy of the server's observability counters,
// served at /statsz and printed in entserver's graceful-drain log line.
// Served* count answered requests by the tier that produced the answer —
// "quant"/"ann"/"exact" searcher names on /match/topk, the @suffix of the
// matcher name on /align; injected test searchers with other names land in
// ServedOther. Cache hits are counted separately (no searcher ran).
type Stats struct {
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEntries   int   `json:"cache_entries"`
	GateRejections int64 `json:"gate_rejections"`
	ServedQuant    int64 `json:"served_quant"`
	ServedANN      int64 `json:"served_ann"`
	ServedExact    int64 `json:"served_exact"`
	ServedOther    int64 `json:"served_other"`
	InFlight       int64 `json:"in_flight"`
	Draining       bool  `json:"draining"`
	// Coalescing counters: Batches is executed windows, BatchedQueries the
	// unique (row, k) queries they carried (avg batch size is the ratio),
	// CoalescedDup the extra requests answered by an existing window entry
	// without a scan of their own, MaxBatchSize the largest window executed.
	Batches        int64 `json:"batches"`
	BatchedQueries int64 `json:"batched_queries"`
	CoalescedDup   int64 `json:"coalesced_dup"`
	MaxBatchSize   int64 `json:"max_batch_size"`
	// Plan is the startup self-configuration plan's chosen engine in label
	// form (e.g. "quant+sparse(C=64,f=4)"); empty when the planner
	// calibration was unavailable at startup.
	Plan string `json:"plan,omitempty"`
}

// Stats snapshots the counters. Safe for concurrent use; the fields are read
// independently, so a snapshot taken under load is approximate, not torn.
func (s *Server) Stats() Stats {
	planLabel := ""
	if s.plan != nil {
		planLabel = s.plan.Chosen.Label()
	}
	return Stats{
		Plan:           planLabel,
		CacheHits:      s.cacheHits.Load(),
		CacheMisses:    s.cacheMisses.Load(),
		CacheEntries:   s.cache.len(),
		GateRejections: s.gateRejections.Load(),
		ServedQuant:    s.servedQuant.Load(),
		ServedANN:      s.servedANN.Load(),
		ServedExact:    s.servedExact.Load(),
		ServedOther:    s.servedOther.Load(),
		InFlight:       s.inflight.Load(),
		Draining:       s.draining.Load(),
		Batches:        s.batches.Load(),
		BatchedQueries: s.batchedQueries.Load(),
		CoalescedDup:   s.coalescedDup.Load(),
		MaxBatchSize:   s.maxBatchSeen.Load(),
	}
}

// countServed attributes one answered request to its serving tier.
func (s *Server) countServed(tier string) {
	switch tier {
	case "quant":
		s.servedQuant.Add(1)
	case "ann":
		s.servedANN.Add(1)
	case "exact":
		s.servedExact.Add(1)
	default:
		s.servedOther.Add(1)
	}
}

// New loads the snapshot at path and builds a ready-to-serve Server.
func New(path string, cfg Config, opts ...Option) (*Server, error) {
	limit := cfg.MaxSnapshotBytes
	if limit <= 0 {
		limit = snapshot.DefaultMaxBytes
	}
	snap, err := snapshot.LoadLimit(path, limit)
	if err != nil {
		return nil, err
	}
	return NewFromSnapshot(snap, cfg, opts...)
}

// NewMapped loads the snapshot at path with its embedding tables served from
// a memory mapping of the file instead of heap copies — the kernel pages
// table bytes in on demand and can evict them under pressure, so a snapshot
// far larger than RAM still serves. The vocabularies, indexes and SQ8 codes
// (small next to the tables) load normally. When the platform has no mmap or
// the mapping fails, it falls back to New's full load — same answers, just
// resident — and Mapped reports which mode won. Close the returned server to
// release the mapping.
func NewMapped(path string, cfg Config, opts ...Option) (*Server, error) {
	limit := cfg.MaxSnapshotBytes
	if limit <= 0 {
		limit = snapshot.DefaultMaxBytes
	}
	r, err := snapshot.OpenReaderLimit(path, limit)
	if err != nil {
		return nil, err
	}
	snap, err := mappedSnapshot(r)
	if err != nil {
		cerr := r.Close()
		if errors.Is(err, snapshot.ErrMalformed) || cerr != nil {
			// A malformed section would fail the full load too; surface it
			// rather than loading the same bad bytes twice.
			return nil, errors.Join(err, cerr)
		}
		log.Printf("entserver: mmap unavailable (%v), loading snapshot into memory", err)
		return New(path, cfg, opts...)
	}
	s, err := NewFromSnapshot(snap, cfg, opts...)
	if err != nil {
		return nil, errors.Join(err, r.Close())
	}
	s.closer, s.mapped = r, true
	return s, nil
}

// mappedSnapshot assembles the in-memory snapshot view over a verified
// reader: mmapped embedding tables, regularly loaded small sections.
func mappedSnapshot(r *snapshot.Reader) (*snapshot.Snapshot, error) {
	src, err := r.MapTable(snapshot.SectionSrcTable)
	if err != nil {
		return nil, err
	}
	tgt, err := r.MapTable(snapshot.SectionTgtTable)
	if err != nil {
		return nil, err
	}
	snap := &snapshot.Snapshot{Meta: r.Meta(), SrcTable: src, TgtTable: tgt}
	snap.SrcVocab, snap.TgtVocab = r.Vocabs()
	if r.Has(snapshot.SectionIVFFwd) {
		if snap.FwdIndex, err = r.IVF(snapshot.SectionIVFFwd); err != nil {
			return nil, err
		}
	}
	if r.Has(snapshot.SectionIVFRev) {
		if snap.RevIndex, err = r.IVF(snapshot.SectionIVFRev); err != nil {
			return nil, err
		}
	}
	if r.Has(snapshot.SectionSQ8Src) {
		if snap.SrcQuant, err = r.SQ8(snapshot.SectionSQ8Src); err != nil {
			return nil, err
		}
		if snap.TgtQuant, err = r.SQ8(snapshot.SectionSQ8Tgt); err != nil {
			return nil, err
		}
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// Mapped reports whether the embedding tables are served from a memory
// mapping of the snapshot file rather than heap copies.
func (s *Server) Mapped() bool { return s.mapped }

// Close releases the snapshot mapping (NewMapped servers); a no-op
// otherwise. Call it only after the HTTP server has shut down — in-flight
// requests read the mapped pages.
func (s *Server) Close() error {
	if s.closer == nil {
		return nil
	}
	c := s.closer
	s.closer = nil
	return c.Close()
}

// NewFromSnapshot builds a Server over an already validated snapshot.
func NewFromSnapshot(snap *snapshot.Snapshot, cfg Config, opts ...Option) (*Server, error) {
	cfg = cfg.withDefaults()
	stream, err := sim.NewStreamPrepared(snap.SrcTable, snap.TgtTable, sim.Metric(snap.Meta.Metric))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		snap:      snap,
		stream:    stream,
		srcByName: make(map[string]int, len(snap.SrcVocab)),
		colIDs:    make([]int, snap.TgtTable.Rows()),
		cache:     newLRU(cfg.CacheSize),
		gate:      make(chan struct{}, cfg.MaxInFlight),
	}
	for i, name := range snap.SrcVocab {
		s.srcByName[name] = i
	}
	for j := range s.colIDs {
		s.colIDs[j] = j
	}
	s.searchers = []TopKSearcher{nil, &exactSearcher{s: s}}
	var fwd, rev *ann.IVF
	var nprobe int
	if snap.FwdIndex != nil {
		if fwd, err = ann.FromData(snap.FwdIndex); err != nil {
			return nil, err
		}
		if snap.RevIndex != nil {
			if rev, err = ann.FromData(snap.RevIndex); err != nil {
				return nil, err
			}
		}
		nprobe = cfg.NProbe
		if nprobe <= 0 {
			nprobe = snap.Meta.ANN.NProbe
		}
		if nprobe > fwd.Clusters() {
			nprobe = fwd.Clusters()
		}
		s.searchers[0] = &ivfSearcher{s: s, ivf: fwd, nprobe: nprobe}
		src, err := ann.NewSourceWithIndexes(stream, snap.SrcTable, snap.TgtTable, ann.Config{
			Clusters:   snap.FwdIndex.K,
			NProbe:     nprobe,
			SampleSize: snap.Meta.ANN.SampleSize,
			Iters:      snap.Meta.ANN.Iters,
			Seed:       snap.Meta.ANN.Seed,
		}, fwd, rev)
		if err != nil {
			return nil, err
		}
		s.annSrc = src
	}

	// SQ8 sections: serve both work endpoints from the quantized slabs as the
	// top tier. The float index/stream tiers stay below as the degradation
	// floor, untouched — AttachQuant only adds a side slab.
	var qs *quantSearcher
	if snap.SrcQuant != nil {
		if sim.Metric(snap.Meta.Metric) != sim.Cosine {
			return nil, fmt.Errorf("server: snapshot carries SQ8 tables but metric %d is not cosine", snap.Meta.Metric)
		}
		srcQ, err := quant.FromData(snap.SrcQuant)
		if err != nil {
			return nil, err
		}
		tgtQ, err := quant.FromData(snap.TgtQuant)
		if err != nil {
			return nil, err
		}
		factor, rerank := quant.DefaultRerankFactor, true
		if qm := snap.Meta.Quant; qm != nil {
			factor, rerank = qm.RerankFactor, qm.Rerank
		}
		qs = &quantSearcher{s: s, factor: factor, rerank: rerank}
		if fwd != nil {
			if err := fwd.AttachQuant(tgtQ); err != nil {
				return nil, err
			}
			qs.ivf, qs.nprobe = fwd, nprobe
			// The /align quant tier: a second view over the shared indexes
			// with the quantized scan switched on. The float annSrc is
			// unaffected — each view dispatches on its own state.
			qsrc, err := ann.NewSourceWithIndexes(stream, snap.SrcTable, snap.TgtTable, ann.Config{
				Clusters:   snap.FwdIndex.K,
				NProbe:     nprobe,
				SampleSize: snap.Meta.ANN.SampleSize,
				Iters:      snap.Meta.ANN.Iters,
				Seed:       snap.Meta.ANN.Seed,
			}, fwd, rev)
			if err != nil {
				return nil, err
			}
			if err := qsrc.EnableQuant(srcQ, tgtQ, factor, rerank); err != nil {
				return nil, err
			}
			s.quantSrc = qsrc
		} else {
			// No index: exhaustive quantized scans for both endpoints.
			qsrc, err := quant.NewSource(stream, snap.SrcTable, snap.TgtTable, srcQ, tgtQ, factor, rerank)
			if err != nil {
				return nil, err
			}
			qs.qsrc = qsrc
			s.quantSrc = qsrc
		}
	}
	// Self-configuration: plan the served workload with the same calibration
	// the CLIs use. Best-effort — a calibration failure must never keep a
	// valid snapshot from serving. The plan is advisory (logged by
	// cmd/entserver, exposed at /statsz) except for the /align default
	// candidate budget, which adopts the planner's choice for this shape.
	s.defaultCand = 32
	if cal, calErr := entmatcher.DefaultCalibration(); calErr == nil {
		w := plan.Workload{
			SrcRows: snap.SrcTable.Rows(),
			TgtRows: snap.TgtTable.Rows(),
			Dim:     snap.SrcTable.Cols(),
		}
		if p, perr := cal.Choose(w); perr == nil {
			s.plan = p
			if c := p.Chosen.Knobs.CandidateBudget; c > 0 {
				s.defaultCand = c
			}
		} else {
			log.Printf("entserver: planner: %v (serving with static defaults)", perr)
		}
	} else {
		log.Printf("entserver: planner calibration: %v (serving with static defaults)", calErr)
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.searchers[0] == nil {
		s.searchers = s.searchers[1:] // no index, no injected primary: exact only
	}
	if qs != nil {
		// Prepended after the options so WithPrimarySearcher keeps replacing
		// the float index tier, not the quant tier above it.
		s.searchers = append([]TopKSearcher{qs}, s.searchers...)
	}
	if cfg.MaxBatch > 1 {
		s.coal = newCoalescer(s)
	}
	return s, nil
}

// Dims reports the served task's source×target shape.
func (s *Server) Dims() (rows, cols int) {
	return s.snap.SrcTable.Rows(), s.snap.TgtTable.Rows()
}

// Plan returns the startup self-configuration plan for the served workload,
// or nil when the planner calibration was unavailable. Callers (cmd/entserver)
// log it so operators can compare the snapshot's engine against what the
// planner would pick for this shape today.
func (s *Server) Plan() *plan.Plan { return s.plan }

// StartDrain flips the server to draining: /readyz turns 503 so load
// balancers stop routing here, while in-flight requests run to completion
// (the caller then awaits them via http.Server.Shutdown).
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports the number of requests currently past the admission gate.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Handler returns the server's HTTP handler: the four endpoints behind the
// recovery middleware, with the gated endpoints behind admission + deadline.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.Handle("/match/topk", s.gated(http.HandlerFunc(s.handleTopK)))
	mux.Handle("/align", s.gated(http.HandlerFunc(s.handleAlign)))
	return s.recovered(mux)
}

// recovered turns handler panics into 500s instead of torn connections.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("entserver: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// gated wraps a work endpoint in the admission gate and per-request
// deadline. The gate is a non-blocking semaphore: when MaxInFlight requests
// are already executing, the request is shed immediately with 429 +
// Retry-After — shedding early and cheaply is what keeps the deadline
// meaningful for the requests that are admitted.
func (s *Server) gated(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
		default:
			s.gateRejections.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.gate
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	rows, cols := s.Dims()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready", "rows": rows, "cols": cols,
		"index": s.snap.FwdIndex != nil,
		"quant": s.quantSrc != nil,
		"mmap":  s.mapped,
	})
}

// handleStatsz reports the observability counters. Like the health probes it
// stays outside the admission gate: observability must answer during
// overload, which is exactly when the counters are interesting.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// topKResponse is one /match/topk answer. DegradedFrom lists the searchers
// that failed before ServedBy answered — the response-level analogue of the
// CLIs' degradation exit code.
type topKResponse struct {
	Query        string      `json:"query"`
	Row          int         `json:"row"`
	K            int         `json:"k"`
	ServedBy     string      `json:"served_by"`
	DegradedFrom []string    `json:"degraded_from,omitempty"`
	Cached       bool        `json:"cached,omitempty"`
	Results      []topKEntry `json:"results"`
}

type topKEntry struct {
	Col   int     `json:"col"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	row, name, ok := s.sourceRow(w, r)
	if !ok {
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	if k > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k %d exceeds the server's limit %d", k, s.cfg.MaxK))
		return
	}
	if cols := s.snap.TgtTable.Rows(); k > cols {
		k = cols
	}

	key := strconv.Itoa(row) + "|" + strconv.Itoa(k)
	if v, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		resp := v.(topKResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.cacheMisses.Add(1)

	// Under concurrent load, route the miss through the coalescer: misses
	// arriving within one MaxWait window are served by a single
	// register-blocked batch scan, and identical (row, k) requests share one
	// entry. A lone request (inflight <= 1) skips the window — no batchmates
	// can arrive, so it takes the direct ladder at zero added latency.
	if s.coal != nil && s.inflight.Load() > 1 {
		res, err := s.coal.do(r.Context(), row, k)
		if err != nil {
			// The request's own deadline fired while waiting on the batch.
			writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
			return
		}
		if res.err != nil {
			if errors.Is(res.err, context.DeadlineExceeded) || r.Context().Err() != nil {
				writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
				return
			}
			writeError(w, http.StatusInternalServerError, res.err.Error())
			return
		}
		resp := topKResponse{
			Query: name, Row: row, K: k,
			ServedBy: res.servedBy, DegradedFrom: res.degraded,
			Results: make([]topKEntry, len(res.top.Indices)),
		}
		for i, col := range res.top.Indices {
			resp.Results[i] = topKEntry{Col: col, Name: s.snap.TgtVocab[col], Score: res.top.Values[i]}
		}
		s.cache.add(key, resp)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	var degraded []string
	for _, searcher := range s.searchers {
		top, err := searcher.Search(r.Context(), row, k)
		if err == nil {
			resp := topKResponse{
				Query: name, Row: row, K: k,
				ServedBy: searcher.Name(), DegradedFrom: degraded,
				Results: make([]topKEntry, len(top.Indices)),
			}
			for i, col := range top.Indices {
				resp.Results[i] = topKEntry{Col: col, Name: s.snap.TgtVocab[col], Score: top.Values[i]}
			}
			s.countServed(searcher.Name())
			s.cache.add(key, resp)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		if r.Context().Err() != nil {
			// The deadline, not the searcher, failed: degrading further
			// would just time out again slower.
			writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
			return
		}
		log.Printf("entserver: searcher %s failed for row %d: %v (degrading)", searcher.Name(), row, err)
		degraded = append(degraded, searcher.Name())
	}
	writeError(w, http.StatusInternalServerError,
		fmt.Sprintf("all searchers failed (%v)", degraded))
}

// sourceRow resolves the query's source entity from ?src=<name> or
// ?row=<index>, writing the HTTP error itself when the lookup fails.
func (s *Server) sourceRow(w http.ResponseWriter, r *http.Request) (int, string, bool) {
	q := r.URL.Query()
	if name := q.Get("src"); name != "" {
		row, ok := s.srcByName[name]
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown source entity %q", name))
			return 0, "", false
		}
		return row, name, true
	}
	if v := q.Get("row"); v != "" {
		row, err := strconv.Atoi(v)
		if err != nil || row < 0 || row >= s.snap.SrcTable.Rows() {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("row must be an integer in [0, %d)", s.snap.SrcTable.Rows()))
			return 0, "", false
		}
		return row, s.snap.SrcVocab[row], true
	}
	writeError(w, http.StatusBadRequest, "missing query parameter: src=<entity name> or row=<index>")
	return 0, "", false
}

// alignRequest is the /align body. Matcher names mirror the CLI's sparse
// set; Cand is the top-C candidate budget for the sparse twins; BudgetMS
// bounds the degradation ladder (0 = the request deadline).
type alignRequest struct {
	Matcher   string `json:"matcher"`
	Cand      int    `json:"cand"`
	CSLSK     int    `json:"csls_k"`
	SinkhornL int    `json:"sinkhorn_l"`
	BudgetMS  int    `json:"budget_ms"`
}

type alignResponse struct {
	Matcher      string      `json:"matcher"`
	DegradedFrom []string    `json:"degraded_from,omitempty"`
	Pairs        int         `json:"pairs"`
	Abstained    int         `json:"abstained"`
	ElapsedMS    int64       `json:"elapsed_ms"`
	Matches      []alignPair `json:"matches"`
}

type alignPair struct {
	Source     int     `json:"source"`
	Target     int     `json:"target"`
	SourceName string  `json:"source_name"`
	TargetName string  `json:"target_name"`
	Score      float64 `json:"score"`
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body: {\"matcher\": \"DInf\"}")
		return
	}
	var req alignRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	m, err := s.alignMatcher(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	budget := s.cfg.RequestTimeout
	if req.BudgetMS > 0 {
		budget = time.Duration(req.BudgetMS) * time.Millisecond
	}
	// The degradation ladder: the requested matcher on the quantized scans
	// (when the snapshot holds SQ8 tables), then the float ANN source, then
	// the same matcher on the exact stream. The exact tier is the safety
	// net — Fallback runs it under the request deadline only.
	var tiers []core.Matcher
	if s.quantSrc != nil {
		tiers = append(tiers, &sourced{m: m, src: s.quantSrc, suffix: "@quant"})
	}
	if s.annSrc != nil {
		tiers = append(tiers, &sourced{m: m, src: s.annSrc, suffix: "@ann"})
	}
	tiers = append(tiers, &sourced{m: m, src: s.stream, suffix: "@exact"})
	chain := core.NewFallback(budget, tiers...)

	mctx := &core.Context{Stream: s.stream, Ctx: r.Context()}
	res, err := core.SafeMatch(chain, mctx)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || r.Context().Err() != nil {
			writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	tier := res.Matcher
	if i := strings.LastIndexByte(tier, '@'); i >= 0 {
		tier = tier[i+1:]
	}
	s.countServed(tier)
	resp := alignResponse{
		Matcher:      res.Matcher,
		DegradedFrom: res.DegradedFrom,
		Pairs:        len(res.Pairs),
		Abstained:    len(res.Abstained),
		ElapsedMS:    res.Elapsed.Milliseconds(),
		Matches:      make([]alignPair, len(res.Pairs)),
	}
	for i, p := range res.Pairs {
		resp.Matches[i] = alignPair{
			Source: p.Source, Target: p.Target,
			SourceName: s.snap.SrcVocab[p.Source], TargetName: s.snap.TgtVocab[p.Target],
			Score: p.Score,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// alignMatcher builds the requested matcher. The set mirrors the CLI's
// sparse candidate-graph twins plus streaming DInf.
func (s *Server) alignMatcher(req alignRequest) (core.Matcher, error) {
	cand := req.Cand
	cols := s.snap.TgtTable.Rows()
	if cand <= 0 {
		// The default budget is self-configured: the startup plan's chosen
		// candidate budget for this workload shape, 32 when no plan exists.
		cand = s.defaultCand
	}
	if cand > cols {
		cand = cols
	}
	cslsK := req.CSLSK
	if cslsK <= 0 {
		cslsK = 1
	}
	sinkL := req.SinkhornL
	if sinkL <= 0 {
		sinkL = 100
	}
	switch req.Matcher {
	case "", "DInf":
		return core.NewDInfStream(), nil
	case "CSLS":
		return core.NewCSLSSparse(cand, cslsK), nil
	case "RInf":
		return core.NewRInfSparse(cand), nil
	case "Sink.":
		return core.NewSinkhornSparse(cand, sinkL), nil
	case "Hun.":
		return core.NewHungarianSparse(cand), nil
	case "SMat":
		return core.NewSMatSparse(cand), nil
	default:
		return nil, fmt.Errorf("unknown matcher %q (have: DInf, CSLS, RInf, Sink., Hun., SMat)", req.Matcher)
	}
}

// sourced runs a matcher with the match context's tile source swapped, so a
// Fallback ladder can try the same algorithm against different engines
// (index-backed, then exact) and record which one answered.
type sourced struct {
	m      core.Matcher
	src    matrix.TileSource
	suffix string
}

func (t *sourced) Name() string { return t.m.Name() + t.suffix }

func (t *sourced) Match(ctx *core.Context) (*core.Result, error) {
	c := *ctx
	c.Stream = t.src
	res, err := t.m.Match(&c)
	if res != nil {
		res.Matcher = t.Name()
	}
	return res, err
}

// quantSearcher answers top-k from the SQ8 code slabs: the quantized IVF
// slab scan when the snapshot carries an index, the exhaustive quantized
// scan otherwise. Both rank with the int8 kernel and re-rank survivors with
// the exact float64 kernel (unless the snapshot was saved quantized-only),
// so a healthy quant tier returns the bits the float tiers would.
type quantSearcher struct {
	s      *Server
	ivf    *ann.IVF // nil → exhaustive scan through qsrc
	nprobe int
	factor int
	rerank bool
	qsrc   *quant.Source
}

func (q *quantSearcher) Name() string { return "quant" }

func (q *quantSearcher) Search(ctx context.Context, row, k int) (matrix.TopK, error) {
	if q.ivf == nil {
		return q.qsrc.SearchRow(ctx, row, k)
	}
	qm, err := matrix.NewFromData(1, q.s.snap.SrcTable.Cols(), q.s.snap.SrcTable.Row(row))
	if err != nil {
		return matrix.TopK{}, err
	}
	res, err := q.ivf.SearchQuant(ctx, qm, k, q.nprobe, q.factor, q.rerank)
	if err != nil {
		return matrix.TopK{}, err
	}
	return res[0], nil
}

// SearchBatch implements BatchSearcher: all rows share each pass over the
// quantized code slabs (the int8 register-blocked kernel scores four queries
// per corpus read), so results are bit-identical to per-row Search at the
// same k — only the slab traffic shrinks.
func (q *quantSearcher) SearchBatch(ctx context.Context, rows []int, k int) ([]matrix.TopK, error) {
	if q.ivf == nil {
		return q.qsrc.SearchRows(ctx, rows, k)
	}
	qm := q.s.gatherSrcRows(rows)
	return q.ivf.SearchQuant(ctx, qm, k, q.nprobe, q.factor, q.rerank)
}

// ivfSearcher answers top-k from the persisted IVF index.
type ivfSearcher struct {
	s      *Server
	ivf    *ann.IVF
	nprobe int
}

func (i *ivfSearcher) Name() string { return "ann" }

func (i *ivfSearcher) Search(ctx context.Context, row, k int) (matrix.TopK, error) {
	q, err := matrix.NewFromData(1, i.s.snap.SrcTable.Cols(), i.s.snap.SrcTable.Row(row))
	if err != nil {
		return matrix.TopK{}, err
	}
	res, err := i.ivf.Search(ctx, q, k, i.nprobe)
	if err != nil {
		return matrix.TopK{}, err
	}
	return res[0], nil
}

// SearchBatch implements BatchSearcher: the IVF slab scan groups the rows
// three per pass through the float register-blocked kernel; each query still
// probes its own cells, so every TopK matches per-row Search bit-for-bit.
func (i *ivfSearcher) SearchBatch(ctx context.Context, rows []int, k int) ([]matrix.TopK, error) {
	return i.ivf.Search(ctx, i.s.gatherSrcRows(rows), k, i.nprobe)
}

// exactSearcher answers top-k from a full streaming score row — the
// always-correct floor of the searcher ladder, metric-faithful because it
// goes through the same Block kernel as the batch engines.
type exactSearcher struct {
	s *Server
}

func (e *exactSearcher) Name() string { return "exact" }

func (e *exactSearcher) Search(ctx context.Context, row, k int) (matrix.TopK, error) {
	block, err := e.s.stream.Block(ctx, []int{row}, e.s.colIDs)
	if err != nil {
		return matrix.TopK{}, err
	}
	scores := block.Row(0)
	sel := matrix.NewBoundedTopK(k)
	for j, v := range scores {
		sel.Offer(v, j)
	}
	return sel.Finalize(), nil
}

// SearchBatch implements BatchSearcher: one multi-row Block extraction scores
// all queries (cosine rows run three per pass through the blocked kernel),
// then each row selects its own top-k. Scores are bit-identical to the
// single-row path, and BoundedTopK's total order (value desc, index asc) is
// scan-order-insensitive, so so are the selections.
func (e *exactSearcher) SearchBatch(ctx context.Context, rows []int, k int) ([]matrix.TopK, error) {
	block, err := e.s.stream.Block(ctx, rows, e.s.colIDs)
	if err != nil {
		return nil, err
	}
	out := make([]matrix.TopK, len(rows))
	for i := range rows {
		sel := matrix.NewBoundedTopK(k)
		for j, v := range block.Row(i) {
			sel.Offer(v, j)
		}
		out[i] = sel.Finalize()
	}
	return out, nil
}

// gatherSrcRows copies the selected source rows into a contiguous query
// matrix for the multi-row index search entry points.
func (s *Server) gatherSrcRows(rows []int) *matrix.Dense {
	qm := matrix.New(len(rows), s.snap.SrcTable.Cols())
	for i, row := range rows {
		copy(qm.Row(i), s.snap.SrcTable.Row(row))
	}
	return qm
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}
