package ann

import (
	"context"
	"math"
	"testing"

	"entmatcher/internal/matrix"
)

// fuzzTable decodes fuzz bytes into a small embedding table on a dyadic grid
// (exact arithmetic, heavy ties and duplicate rows — the adversarial regime
// for selection tie-breaks). Rows are NOT normalized: the index contract is
// inner-product search over whatever prepared rows it is given, and
// un-normalized tables exercise the same code paths with nastier score
// collisions.
func fuzzTable(data []byte, colsB byte) *matrix.Dense {
	cols := int(colsB%7) + 1
	rows := len(data) / cols
	if rows == 0 {
		return nil
	}
	if rows > 48 {
		rows = 48
	}
	m := matrix.New(rows, cols)
	vals := m.Data()
	for i := range vals {
		vals[i] = float64(data[i]>>3)/32 - 0.5
	}
	return m
}

// FuzzIVFQuery cross-checks the IVF query path against the exhaustive
// oracle on arbitrary tie-heavy tables. Invariants:
//
//   - at nprobe = Clusters the result is bit-identical to the naive
//     all-pairs top-c in (value desc, index asc) order, for every cluster
//     count the bytes select;
//   - at partial nprobe every returned hit is a genuinely scored corpus
//     point: its value equals the oracle's score for that id, rows stay
//     sorted in the canonical order, and no id repeats within a row.
func FuzzIVFQuery(f *testing.F) {
	f.Add([]byte{0, 8, 16, 8, 8, 255, 32, 32, 1, 77, 200, 13}, []byte{9, 9, 9, 9, 9, 9, 9, 9}, byte(3), byte(4), byte(2))
	f.Add([]byte{200, 100, 200, 100, 200, 100, 200, 100}, []byte{1, 2, 3, 4, 5, 6}, byte(1), byte(8), byte(5))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, []byte{7, 7, 7, 7}, byte(2), byte(1), byte(1))
	f.Fuzz(func(t *testing.T, corpusB, queryB []byte, colsB, kB, cB byte) {
		corpus := fuzzTable(corpusB, colsB)
		queries := fuzzTable(queryB, colsB)
		if corpus == nil || queries == nil {
			return
		}
		k := int(kB)%corpus.Rows() + 1
		c := int(cB)%(corpus.Rows()+2) + 1
		ivf, err := Build(context.Background(), corpus, Config{Clusters: k, Seed: 99})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		want := naiveSearchF(queries, corpus, c)

		got, err := ivf.Search(context.Background(), queries, c, ivf.Clusters())
		if err != nil {
			t.Fatalf("Search(full): %v", err)
		}
		for i := range want {
			if !topKEqual(got[i], want[i]) {
				t.Fatalf("full-probe query %d differs from oracle\ngot  %+v\nwant %+v", i, got[i], want[i])
			}
		}

		partial, err := ivf.Search(context.Background(), queries, c, 1)
		if err != nil {
			t.Fatalf("Search(nprobe=1): %v", err)
		}
		for i, tk := range partial {
			seen := make(map[int]bool, len(tk.Indices))
			for x, j := range tk.Indices {
				if j < 0 || j >= corpus.Rows() {
					t.Fatalf("query %d: id %d out of range", i, j)
				}
				if seen[j] {
					t.Fatalf("query %d: duplicate id %d", i, j)
				}
				seen[j] = true
				if exact := matrix.Dot4(queries.Row(i), corpus.Row(j)); tk.Values[x] != exact {
					t.Fatalf("query %d id %d: score %v != exact %v", i, j, tk.Values[x], exact)
				}
				if x > 0 {
					pv, pj := tk.Values[x-1], tk.Indices[x-1]
					if !(pv > tk.Values[x] || (pv == tk.Values[x] && pj < j)) {
						t.Fatalf("query %d: row order violated at %d: (%v,%d) then (%v,%d)",
							i, x, pv, pj, tk.Values[x], j)
					}
				}
			}
			// A probed cell can be empty (no corpus point chose it), so rows
			// may hold fewer than c hits — but never more.
			if len(tk.Values) > c {
				t.Fatalf("query %d: %d hits for budget %d", i, len(tk.Values), c)
			}
		}
	})
}

// naiveSearchF is naiveSearch without the *testing.T plumbing, shared with
// the fuzz target; kept separate so a future move of naiveSearch into a
// helper file cannot silently weaken the oracle.
func naiveSearchF(queries, corpus *matrix.Dense, c int) []matrix.TopK {
	if c > corpus.Rows() {
		c = corpus.Rows()
	}
	scores := matrix.New(queries.Rows(), corpus.Rows())
	for i := 0; i < queries.Rows(); i++ {
		row := scores.Row(i)
		for j := 0; j < corpus.Rows(); j++ {
			row[j] = matrix.Dot4(queries.Row(i), corpus.Row(j))
		}
	}
	tks := scores.RowTopK(c)
	for i := range tks {
		for _, v := range tks[i].Values {
			if math.IsNaN(v) {
				panic("oracle produced NaN")
			}
		}
	}
	return tks
}
