package bench

import (
	"testing"

	"entmatcher"
	"entmatcher/internal/datagen"
)

func TestEnvEmbeddingCacheScaleCollision(t *testing.T) {
	env := NewEnv()
	d1, err := env.Dataset(datagen.DBP15KZhEn, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	pc := entmatcher.PipelineConfig{Model: entmatcher.ModelRREA}
	r1, err := env.Run(d1, pc)
	if err != nil {
		t.Fatal(err)
	}
	_ = r1
	d2, err := env.Dataset(datagen.DBP15KZhEn, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := env.Run(d2, pc)
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := r2.Match(entmatcher.NewDInf())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scale-0.02 run after 0.05 cached: F1=%v rows=%d", m.F1, r2.S.Rows())
	if m.F1 < 0.2 {
		t.Fatalf("embedding cache collision across scales: F1=%v", m.F1)
	}
	// The two dataset instances must have distinct cached embeddings: a
	// shared cache entry would mean r2 was scored on r1's embedding table.
	if len(env.embeddings) < 2 {
		t.Fatalf("embedding cache holds %d entries; scale collision suspected", len(env.embeddings))
	}
}
