package kg

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// On-disk layout (OpenEA-compatible):
//
//	<dir>/ent_ids_1       entity URIs in dense-ID order (source KG)
//	<dir>/ent_ids_2       same for the target KG
//	<dir>/rel_triples_1   TAB-separated subject predicate object (source KG)
//	<dir>/rel_triples_2   same for the target KG
//	<dir>/ent_links_train TAB-separated source target URIs
//	<dir>/ent_links_valid
//	<dir>/ent_links_test
//	<dir>/ent_names_1     optional TAB-separated URI surface-form
//	<dir>/ent_names_2
const (
	fileEntities1  = "ent_ids_1"
	fileEntities2  = "ent_ids_2"
	fileTriples1   = "rel_triples_1"
	fileTriples2   = "rel_triples_2"
	fileLinksTrain = "ent_links_train"
	fileLinksValid = "ent_links_valid"
	fileLinksTest  = "ent_links_test"
	fileNames1     = "ent_names_1"
	fileNames2     = "ent_names_2"
)

// writeEntities serializes the entity vocabulary in dense-ID order, so
// entities that participate in no triple survive a round trip.
func writeEntities(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for id := 0; id < g.NumEntities(); id++ {
		if _, err := fmt.Fprintln(bw, g.EntityName(id)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readEntities interns one entity per line into g.
func readEntities(r io.Reader, g *Graph) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line != "" {
			g.AddEntity(line)
		}
	}
	return sc.Err()
}

// WriteGraph serializes the triples of g in TSV form.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.SortedTriples() {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n",
			g.EntityName(t.Subject), g.RelationName(t.Relation), g.EntityName(t.Object)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGraph parses TSV triples into a new graph named name.
func ReadGraph(r io.Reader, name string) (*Graph, error) {
	g := NewGraph(name)
	if err := readTriplesInto(r, g); err != nil {
		return nil, err
	}
	return g, nil
}

// readTriplesInto parses TSV triples into an existing graph.
func readTriplesInto(r io.Reader, g *Graph) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return fmt.Errorf("kg: %s line %d: want 3 tab-separated fields, got %d", g.Name, lineNo, len(parts))
		}
		g.AddTripleNames(parts[0], parts[1], parts[2])
	}
	return sc.Err()
}

// writeLinks serializes links as "sourceURI\ttargetURI" lines.
func writeLinks(w io.Writer, set LinkSet, src, tgt *Graph) error {
	bw := bufio.NewWriter(w)
	for _, l := range set.Links {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", src.EntityName(l.Source), tgt.EntityName(l.Target)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readLinks parses link lines, resolving URIs against the two graphs.
func readLinks(r io.Reader, src, tgt *Graph) (LinkSet, error) {
	var set LinkSet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			return set, fmt.Errorf("kg: links line %d: want 2 fields, got %d", lineNo, len(parts))
		}
		s, ok := src.EntityID(parts[0])
		if !ok {
			return set, fmt.Errorf("kg: links line %d: unknown source entity %q", lineNo, parts[0])
		}
		t, ok := tgt.EntityID(parts[1])
		if !ok {
			return set, fmt.Errorf("kg: links line %d: unknown target entity %q", lineNo, parts[1])
		}
		set.Add(s, t)
	}
	return set, sc.Err()
}

// writeNames serializes surface forms as "URI\tname" lines in ID order.
func writeNames(w io.Writer, g *Graph, names []string) error {
	bw := bufio.NewWriter(w)
	for id, form := range names {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", g.EntityName(id), form); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readNames parses surface forms, resolving URIs against g. Entities missing
// from the file keep an empty surface form.
func readNames(r io.Reader, g *Graph) ([]string, error) {
	names := make([]string, g.NumEntities())
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("kg: names line %d: want 2 fields", lineNo)
		}
		id, ok := g.EntityID(parts[0])
		if !ok {
			return nil, fmt.Errorf("kg: names line %d: unknown entity %q", lineNo, parts[0])
		}
		names[id] = parts[1]
	}
	return names, sc.Err()
}

// WritePair serializes a dataset to dir, creating it if necessary.
func WritePair(dir string, p *Pair) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeFile := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile(fileEntities1, func(w io.Writer) error { return writeEntities(w, p.Source) }); err != nil {
		return err
	}
	if err := writeFile(fileEntities2, func(w io.Writer) error { return writeEntities(w, p.Target) }); err != nil {
		return err
	}
	if err := writeFile(fileTriples1, func(w io.Writer) error { return WriteGraph(w, p.Source) }); err != nil {
		return err
	}
	if err := writeFile(fileTriples2, func(w io.Writer) error { return WriteGraph(w, p.Target) }); err != nil {
		return err
	}
	links := []struct {
		name string
		set  LinkSet
	}{
		{fileLinksTrain, p.Split.Train},
		{fileLinksValid, p.Split.Valid},
		{fileLinksTest, p.Split.Test},
	}
	for _, l := range links {
		l := l
		if err := writeFile(l.name, func(w io.Writer) error { return writeLinks(w, l.set, p.Source, p.Target) }); err != nil {
			return err
		}
	}
	if p.SourceNames != nil {
		if err := writeFile(fileNames1, func(w io.Writer) error { return writeNames(w, p.Source, p.SourceNames) }); err != nil {
			return err
		}
	}
	if p.TargetNames != nil {
		if err := writeFile(fileNames2, func(w io.Writer) error { return writeNames(w, p.Target, p.TargetNames) }); err != nil {
			return err
		}
	}
	return nil
}

// ReadPair deserializes a dataset previously written by WritePair.
func ReadPair(dir, name string) (*Pair, error) {
	readInto := func(fname string, fn func(io.Reader) error) error {
		f, err := os.Open(filepath.Join(dir, fname))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	p := &Pair{Name: name, Split: &Split{}}
	p.Source = NewGraph(name + "-source")
	p.Target = NewGraph(name + "-target")
	// Entity vocabulary files are optional for compatibility with plain
	// OpenEA dumps; when present they fix the dense-ID order and preserve
	// isolated entities.
	for _, v := range []struct {
		fname string
		g     *Graph
	}{{fileEntities1, p.Source}, {fileEntities2, p.Target}} {
		v := v
		if _, err := os.Stat(filepath.Join(dir, v.fname)); err == nil {
			if err := readInto(v.fname, func(r io.Reader) error { return readEntities(r, v.g) }); err != nil {
				return nil, err
			}
		}
	}
	if err := readInto(fileTriples1, func(r io.Reader) error { return readTriplesInto(r, p.Source) }); err != nil {
		return nil, err
	}
	if err := readInto(fileTriples2, func(r io.Reader) error { return readTriplesInto(r, p.Target) }); err != nil {
		return nil, err
	}
	links := []struct {
		fname string
		dst   *LinkSet
	}{
		{fileLinksTrain, &p.Split.Train},
		{fileLinksValid, &p.Split.Valid},
		{fileLinksTest, &p.Split.Test},
	}
	for _, l := range links {
		l := l
		if err := readInto(l.fname, func(r io.Reader) error {
			set, err := readLinks(r, p.Source, p.Target)
			*l.dst = set
			return err
		}); err != nil {
			return nil, err
		}
	}
	// Name files are optional.
	if _, err := os.Stat(filepath.Join(dir, fileNames1)); err == nil {
		if err := readInto(fileNames1, func(r io.Reader) error {
			names, err := readNames(r, p.Source)
			p.SourceNames = names
			return err
		}); err != nil {
			return nil, err
		}
	}
	if _, err := os.Stat(filepath.Join(dir, fileNames2)); err == nil {
		if err := readInto(fileNames2, func(r io.Reader) error {
			names, err := readNames(r, p.Target)
			p.TargetNames = names
			return err
		}); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
