// Command entserver serves entity-alignment queries over HTTP from one
// crash-safe snapshot (see internal/snapshot and `entmatcher
// -save-snapshot`). The snapshot is verified once at startup and the
// embedding tables are memory-mapped from the file by default (-mmap=false
// forces a full load), so a snapshot larger than RAM still serves; requests
// are then answered entirely from the prepared tables and the persisted IVF
// index — no embedding model, no dataset directory.
//
// Usage:
//
//	entmatcher -data ./data/D-Z -cand 64 -ann 32 -save-snapshot prep.snap
//	entserver -snapshot prep.snap -addr :8080
//
//	curl 'localhost:8080/match/topk?src=src/42&k=5'
//	curl -X POST localhost:8080/align -d '{"matcher":"RInf","cand":32}'
//	curl localhost:8080/readyz
//	curl localhost:8080/statsz
//
// A snapshot saved with `entmatcher -quant -save-snapshot` carries SQ8
// quantized tables; the server then serves both work endpoints from the int8
// code slabs with exact float64 re-rank (served_by/matcher report the
// "quant" tier), falling back to the float index and exact scan on failure.
//
// The server sheds load instead of queuing (429 + Retry-After past
// -max-inflight), bounds every request with -timeout, surfaces degraded
// answers in the response's "degraded_from" field, and drains in-flight
// requests on SIGTERM/SIGINT before exiting 0. Under concurrent load,
// /match/topk cache misses are coalesced into register-blocked batch scans
// (-max-batch and -max-wait tune the window; batch counters show at
// /statsz). See internal/server for the full robustness contract and
// internal/exitcode for the exit convention.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"entmatcher/internal/exitcode"
	"entmatcher/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "entserver:", err)
		os.Exit(exitcode.Failure)
	}
	os.Exit(exitcode.OK)
}

func run() error {
	var (
		snapPath  = flag.String("snapshot", "", "snapshot file to serve (required; written by entmatcher -save-snapshot)")
		addr      = flag.String("addr", ":8080", "listen address")
		maxFlight = flag.Int("max-inflight", 16, "admission-gate capacity: requests beyond this many in flight are shed with 429 + Retry-After")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request deadline; a request that exceeds it gets 504")
		cacheSize = flag.Int("cache", 1024, "LRU capacity (entries) for /match/topk results")
		maxK      = flag.Int("max-k", 128, "largest k a /match/topk request may ask for")
		nprobe    = flag.Int("nprobe", 0, "IVF cells probed per /match/topk query (0 = the snapshot's recorded value)")
		maxBatch  = flag.Int("max-batch", 32, "largest coalesced /match/topk batch: concurrent cache misses are collected into one register-blocked batch scan (<= 1 disables coalescing)")
		maxWait   = flag.Duration("max-wait", 500*time.Microsecond, "how long a coalescing window stays open for batchmates; only paid when at least two requests are in flight")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests before giving up")
		useMmap   = flag.Bool("mmap", true, "serve the embedding tables from a memory mapping of the snapshot file (tables larger than RAM page in on demand); falls back to a full load when the platform cannot mmap")
	)
	flag.Parse()
	if *snapPath == "" {
		return fmt.Errorf("-snapshot is required")
	}

	scfg := server.Config{
		MaxInFlight:    *maxFlight,
		RequestTimeout: *timeout,
		CacheSize:      *cacheSize,
		MaxK:           *maxK,
		NProbe:         *nprobe,
		MaxBatch:       *maxBatch,
		MaxWait:        *maxWait,
	}
	if *maxBatch <= 1 {
		scfg.MaxBatch = -1 // <= 1 disables; Config treats 0 as "default"
	}
	newServer := server.New
	if *useMmap {
		newServer = server.NewMapped
	}
	srv, err := newServer(*snapPath, scfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	rows, cols := srv.Dims()
	// Startup self-configuration: what the cost-based planner picks for the
	// served shape, for operators to compare against the snapshot's engine.
	// Also exposed at /statsz as "plan".
	if p := srv.Plan(); p != nil {
		fmt.Printf("entserver: planner: %s for %d×%d (est wall %v)\n",
			p.Chosen.Label(), rows, cols, p.Chosen.EstWall().Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	// Printed after Listen succeeded, so scripts can poll for this line;
	// the address stays the final token after " on " for parsers.
	tables := "resident tables"
	if srv.Mapped() {
		tables = "mmapped tables"
	}
	fmt.Printf("entserver: serving %d×%d task (%s) on %s\n", rows, cols, tables, ln.Addr())

	select {
	case err := <-errc:
		return err // Serve failed before any shutdown was requested
	case <-ctx.Done():
	}

	// Drain: flip /readyz to 503 so load balancers stop routing here, then
	// let in-flight requests finish. Shutdown stops accepting new
	// connections immediately and returns once the last request completes
	// (or the drain budget runs out).
	fmt.Println("entserver: signal received, draining")
	srv.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.Stats()
	fmt.Printf("entserver: drained, exiting (served quant=%d ann=%d exact=%d other=%d, cache hits=%d misses=%d, shed=%d, batches=%d coalesced=%d)\n",
		st.ServedQuant, st.ServedANN, st.ServedExact, st.ServedOther,
		st.CacheHits, st.CacheMisses, st.GateRejections,
		st.Batches, st.CoalescedDup)
	return nil
}
