package matrix

// Register-blocked multi-query dot kernel: three source rows scored against
// one shared target row per call. The streamed tile pass and every slab scan
// are memory-bandwidth bound — each target row used to be re-read from
// L2/DRAM once per source row — so amortizing one target-row load across a
// block of queries raises arithmetic intensity 3× on the hottest loop in the
// repository. The geometry is 3×1 and not wider because bit-identity with
// the per-pair kernel is part of the contract: each pair keeps dotAVX2's
// four YMM accumulators, and 3 pairs × 4 accumulators + 4 shared
// target-row chunks fill all 16 architectural YMM registers (see
// dot_block_amd64.s).

// dotBlock3 computes out[j] = dot(aj, b) for j in 0..2. Each out[j] is
// bit-identical to dot(aj, b): the AVX2 path replicates dotAVX2's per-pair
// arithmetic exactly (FP multiplication is commutative, so holding b in the
// register and streaming a from memory rounds identically), and the
// dispatch condition is the same len >= 16 cut so short vectors take the
// scalar kernel on every platform. All four slices must have equal length.
func dotBlock3(a0, a1, a2, b []float64, out *[3]float64) {
	if hasFastDot && len(b) >= 16 {
		dotBlock3AVX2(a0, a1, a2, b, out)
		return
	}
	out[0] = dotUnroll4(a0, b)
	out[1] = dotUnroll4(a1, b)
	out[2] = dotUnroll4(a2, b)
}

// DotBlock3 exposes the blocked kernel to sibling packages (internal/sim's
// Block extraction and internal/ann's probed-cell scans). out[j] ==
// Dot4(aj, b) bit-for-bit on every platform.
func DotBlock3(a0, a1, a2, b []float64, out *[3]float64) {
	dotBlock3(a0, a1, a2, b, out)
}

// DotBlockRows scores every row of a (len(a) query rows, arbitrary count)
// against the single target row b, writing Dot4(a[i], b) into out[i]. Full
// 3-row groups go through the blocked kernel; the ragged remainder falls
// back to the per-pair kernel, so every element is bit-identical to a plain
// Dot4 loop. len(out) must be >= len(a).
func DotBlockRows(a [][]float64, b []float64, out []float64) {
	i := 0
	for ; i+3 <= len(a); i += 3 {
		var blk [3]float64
		dotBlock3(a[i], a[i+1], a[i+2], b, &blk)
		out[i], out[i+1], out[i+2] = blk[0], blk[1], blk[2]
	}
	for ; i < len(a); i++ {
		out[i] = dot(a[i], b)
	}
}
