package core

import (
	"context"
	"fmt"
	"math"

	"entmatcher/internal/matrix"
)

// HungarianDecider solves the linear assignment problem on the score matrix
// (the paper's § 3.5, Hun.): it finds the 1-to-1 assignment of rows to
// columns maximizing the total score, via the shortest-augmenting-path
// algorithm with dual potentials (Jonker & Volgenant 1987 [21], the
// implementation the paper uses). Time O(n²·m), space O(n·m).
//
// The matrix may be rectangular with rows ≤ cols; when rows > cols the
// decider solves the transposed problem. Rows assigned to dummy columns
// (ctx.NumDummies trailing columns) are reported as abstained.
//
// The augmenting-path search checks ctx.Ctx cooperatively once per
// augmentation step (each step scans one row of the matrix), so a deadline
// or cancel aborts a long run within O(cols) work — this matters because a
// single Hungarian run dominates the whole pipeline at DWY100K scale
// (the paper's Figure 5).
type HungarianDecider struct{}

// Name returns "hungarian".
func (HungarianDecider) Name() string { return "hungarian" }

// Decide computes the optimal assignment.
func (HungarianDecider) Decide(ctx *Context, s *matrix.Dense) ([]Pair, []int, error) {
	rows, cols := s.Rows(), s.Cols()
	if rows == 0 || cols == 0 {
		return nil, nil, fmt.Errorf("hungarian: empty matrix %d×%d", rows, cols)
	}
	cc := ctx.Cancellation()
	var rowOf []int // column -> assigned row, or -1
	if rows <= cols {
		var err error
		rowOf, err = solveLAP(cc, s)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// More rows than columns: solve on the transpose (whose rows are
		// the original columns), leaving some original rows unmatched.
		// solveLAP on the transpose yields, per transpose-column (original
		// row), the assigned transpose-row (original column).
		rowAssign, err := solveLAP(cc, s.Transpose())
		if err != nil {
			return nil, nil, err
		}
		rowOf = make([]int, cols)
		for j := range rowOf {
			rowOf[j] = -1
		}
		for origRow, origCol := range rowAssign {
			if origCol >= 0 {
				rowOf[origCol] = origRow
			}
		}
	}
	assigned := make([]int, rows) // row -> column or -1
	for i := range assigned {
		assigned[i] = -1
	}
	for j, i := range rowOf {
		if i >= 0 {
			assigned[i] = j
		}
	}
	realCols := cols - ctx.NumDummies
	pairs := make([]Pair, 0, rows)
	var abstained []int
	for i, j := range assigned {
		if j < 0 || j >= realCols {
			abstained = append(abstained, i)
			continue
		}
		pairs = append(pairs, Pair{Source: i, Target: j, Score: s.At(i, j)})
	}
	return pairs, abstained, nil
}

// ExtraBytes covers the duals, assignment arrays and the per-augmentation
// scratch, per the package accounting rule: one Θ(rows) dual plus five
// Θ(cols) arrays (v, p, way, minv at 8 bytes, used at 1), the column-to-row
// assignment and the row-to-column table. When rows > cols the decider
// solves the transposed problem, which materializes Sᵀ — a full extra matrix
// that dominates the vectors and must be counted for the memory tables to
// reflect what tall inputs actually cost.
func (HungarianDecider) ExtraBytes(rows, cols int) int64 {
	n, m := rows, cols // solveLAP shape: n ≤ m
	var transposed int64
	if rows > cols {
		n, m = cols, rows
		transposed = matBytes(rows, cols)
	}
	return transposed + int64(n)*16 + int64(m)*41
}

// solveLAP returns, for each column, the row assigned to it (-1 if none),
// maximizing the total score of a complete assignment of all rows.
// Requires rows ≤ cols. It returns ctx.Err() as soon as the context is done;
// cancellation is checked once per search step, whose cost is one O(cols)
// scan, so the abort latency is bounded by a single matrix row.
//
// The formulation is Jonker & Volgenant's shortest augmenting path with
// absolute distance labels: per free row, a Dijkstra search over reduced
// costs (cost = -score) finds the cheapest alternating path to a free
// column, then the duals of the scanned columns are updated once from their
// final distances (u[p[j]] += df − dist[j], v[j] −= df − dist[j]).
// Mathematically this is the classic per-round delta formulation with the
// deltas telescoped; computationally it does the dual updates in O(path)
// instead of O(rounds²), and — crucially — it is the exact arithmetic the
// sparse candidate-graph solver (solveSparseLAP) performs, which is what
// makes the sparse matcher bit-identical to this one at full candidate
// width. Ties in the pivot choice break toward the smallest column index;
// ties in the relaxation keep the earliest predecessor (strict <), matching
// the selection contract used across the package.
func solveLAP(ctx context.Context, s *matrix.Dense) ([]int, error) {
	n, m := s.Rows(), s.Cols()
	// Minimization duals over cost = -score. 1-based arrays with a virtual
	// row 0 / column 0.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j]: row (1-based) assigned to column j; 0 = free
	pred := make([]int, m+1)
	dist := make([]float64, m+1)
	scanned := make([]bool, m+1)
	ready := make([]int, 0, m) // scanned columns in pop order

	for i := 1; i <= n; i++ {
		p[0] = i
		for j := 1; j <= m; j++ {
			scanned[j] = false
			pred[j] = 0
		}
		ready = ready[:0]
		row := s.Row(i - 1)
		for j := 1; j <= m; j++ {
			dist[j] = -row[j-1] - u[i] - v[j]
		}
		jf := -1 // free column ending the shortest augmenting path
		var df float64
		for {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			j1 := -1
			best := math.Inf(1)
			for j := 1; j <= m; j++ {
				if !scanned[j] && dist[j] < best {
					best = dist[j]
					j1 = j
				}
			}
			if j1 < 0 {
				break // unreachable with finite scores; leaves row i unassigned
			}
			if p[j1] == 0 {
				jf, df = j1, best
				break
			}
			scanned[j1] = true
			ready = append(ready, j1)
			i2 := p[j1]
			r2 := s.Row(i2 - 1)
			d := dist[j1]
			for j := 1; j <= m; j++ {
				if scanned[j] {
					continue
				}
				nd := d + (-r2[j-1] - u[i2] - v[j])
				if nd < dist[j] {
					dist[j] = nd
					pred[j] = j1
				}
			}
		}
		if jf < 0 {
			continue
		}
		u[i] += df
		for _, j := range ready {
			u[p[j]] += df - dist[j]
			v[j] -= df - dist[j]
		}
		for j := jf; j != 0; {
			pj := pred[j]
			p[j] = p[pj]
			j = pj
		}
	}
	out := make([]int, m)
	for j := 1; j <= m; j++ {
		out[j-1] = p[j] - 1 // back to 0-based; -1 = unassigned
	}
	return out, nil
}

// NewHungarian returns the Hun. algorithm: raw scores plus optimal
// assignment. Under the 1-to-1 evaluation setting this is the paper's
// strongest matcher; its time complexity O(n³) makes it the least scalable.
func NewHungarian() *Composite {
	return NewComposite(NoneTransform{}, HungarianDecider{}, "Hun.")
}
