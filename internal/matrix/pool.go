package matrix

import (
	"runtime"
	"sync"
)

// workerPool is a persistent, package-wide pool of compute goroutines. The
// row-parallel helpers used to spawn one goroutine per chunk on every call;
// at streaming-tile granularity (thousands of kernel invocations per match)
// the spawn/exit churn becomes measurable, so chunks are now dispatched onto
// long-lived workers instead. The pool is sized to GOMAXPROCS at first use
// and lives for the process lifetime.
//
// Deadlock safety: submit never blocks. If the queue is full (all workers
// busy and the buffer exhausted), the chunk runs inline on the submitting
// goroutine. Pool tasks are always leaf work — they never submit to the pool
// themselves — so a task can never wait on queue capacity held by its own
// group.
type workerPool struct {
	once  sync.Once
	tasks chan func()
}

// defaultPool is the shared process-wide pool.
var defaultPool workerPool

func (p *workerPool) start() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	p.tasks = make(chan func(), 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for task := range p.tasks {
				task()
			}
		}()
	}
}

// submit enqueues task on a pool worker, or runs it inline when the pool is
// saturated. It never blocks.
func (p *workerPool) submit(task func()) {
	p.once.Do(p.start)
	select {
	case p.tasks <- task:
	default:
		task()
	}
}

// parallelChunks splits [0, n) into one contiguous chunk per worker and runs
// fn(lo, hi) for each chunk on the pool, waiting for all chunks to finish.
// When n is too small to amortize dispatch (or there is a single CPU) it
// runs fn(0, n) inline.
func parallelChunks(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 2*workers {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		defaultPool.submit(func() {
			defer wg.Done()
			fn(lo, hi)
		})
	}
	wg.Wait()
}

// tileBufPool recycles the float64 scratch buffers behind streaming tiles.
// Tiles are all the same nominal size within one streaming pass, so the pool
// hands back ready-to-use slices and the per-tile allocation cost drops to
// zero after warm-up.
var tileBufPool sync.Pool

// getTileBuf returns a zeroed-length-n buffer with at least n capacity.
// Contents are unspecified; callers must overwrite every element they read.
func getTileBuf(n int) []float64 {
	if v := tileBufPool.Get(); v != nil {
		buf := v.([]float64)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

// putTileBuf returns a buffer to the pool for reuse.
func putTileBuf(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	tileBufPool.Put(buf[:cap(buf)]) //nolint:staticcheck // slice header boxing is fine here
}

// GetTileBuf hands out a recycled scratch buffer of length n for streaming
// tiles. Contents are unspecified.
func GetTileBuf(n int) []float64 { return getTileBuf(n) }

// PutTileBuf returns a buffer obtained from GetTileBuf to the pool.
func PutTileBuf(buf []float64) { putTileBuf(buf) }

// heapBackingPool recycles the flat backing arrays behind the streaming
// accumulators' per-row/per-column heaps (one float64 and one int array per
// accumulator, sliced into k-capacity sub-slices). Before pooling, every
// accumulator construction cost 2 allocations per row, which is why
// allocs/op in BenchmarkStream* grew linearly with n.
var (
	heapValsPool sync.Pool
	heapIdxPool  sync.Pool
)

// getHeapVals returns a float64 backing array with length and capacity n.
// Contents are unspecified.
func getHeapVals(n int) []float64 {
	if v := heapValsPool.Get(); v != nil {
		buf := v.([]float64)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

// putHeapVals returns a backing array to the pool.
func putHeapVals(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	heapValsPool.Put(buf[:cap(buf)]) //nolint:staticcheck // slice header boxing is fine here
}

// getHeapIdx returns an int backing array with length and capacity n.
// Contents are unspecified.
func getHeapIdx(n int) []int {
	if v := heapIdxPool.Get(); v != nil {
		buf := v.([]int)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]int, n)
}

// putHeapIdx returns a backing array to the pool.
func putHeapIdx(buf []int) {
	if cap(buf) == 0 {
		return
	}
	heapIdxPool.Put(buf[:cap(buf)]) //nolint:staticcheck // slice header boxing is fine here
}
