package server

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"entmatcher/internal/matrix"
)

// This file implements server-side request coalescing for /match/topk
// (DESIGN.md § 17). Cache misses arriving while the server is busy are
// collected into a bounded window (Config.MaxBatch entries, held open at
// most Config.MaxWait) and served by ONE walk of the searcher ladder using
// the tiers' SearchBatch entry points, which feed the register-blocked
// multi-query kernels — one pass over the corpus slabs answers the whole
// window. Identical (row, k) requests are deduplicated singleflight-style
// into a single window entry.
//
// The contract that makes coalescing invisible to clients:
//
//   - Identity: every tier's SearchBatch is bit-identical to per-row Search
//     at the same k, and a window executes one tier call per DISTINCT k, so
//     a coalesced response carries exactly the bytes an uncoalesced one
//     would (conformance-pinned).
//   - Isolation: the batch runs under a context carrying the server's
//     RequestTimeout but detached from every member request, so one
//     client's disconnect or deadline cannot poison its batchmates — the
//     abandoning waiter just stops listening.
//   - Zero steady-state allocation: windows, entries, waiters, and timers
//     are pooled; the enqueue/wait/wake machinery allocates nothing per
//     query once warm (pinned by TestCoalescerSteadyStateAllocs).

// BatchSearcher is the optional batch extension of TopKSearcher. The
// server's built-in tiers implement it; injected searchers (the
// fault-injection seams) need not — the coalescer falls back to per-row
// Search calls for them, preserving every existing failure-injection test's
// semantics.
type BatchSearcher interface {
	TopKSearcher
	// SearchBatch returns, for each source row, its top-k target columns,
	// best first, bit-identical to per-row Search(ctx, rows[i], k).
	SearchBatch(ctx context.Context, rows []int, k int) ([]matrix.TopK, error)
}

// batchResult is one window entry's outcome, fanned out to every waiter of
// that entry. The TopK and degraded slices are shared read-only.
type batchResult struct {
	top      matrix.TopK
	servedBy string
	degraded []string
	err      error
}

func (r batchResult) settled() bool { return r.servedBy != "" || r.err != nil }

// batchWaiter is one request's rendezvous with its window entry. The
// buffered channel guarantees the executor's send never blocks; abandoned
// arbitrates the waiter-gave-up/executor-delivered race: both sides CAS
// false→true, and the winner dictates who returns the struct to the pool
// (executor reclaims abandoned waiters, waiters reclaim delivered ones).
type batchWaiter struct {
	ch        chan batchResult
	abandoned atomic.Bool
}

// batchItem is one deduplicated (row, k) query in a window and the waiters
// attached to it.
type batchItem struct {
	row, k  int
	waiters []*batchWaiter
	res     batchResult
}

// batchWindow is one collection round: the deduplicated items, the key
// index, a full-signal for the leader, and reusable scratch for execution.
type batchWindow struct {
	items  []*batchItem
	byKey  map[int64]*batchItem
	joined int           // requests attached (leader + joiners, dups included)
	full   chan struct{} // buffered 1; signaled when the window seals early
	rows   []int         // execution scratch: one group's rows
	tops   []matrix.TopK // execution scratch: per-row fallback results
}

// coalescer batches concurrent /match/topk cache misses. The first miss to
// find no open window becomes the leader: it opens one, holds it for up to
// maxWait (or until maxBatch entries, or until every in-flight request has
// attached — see sealIfComplete), seals it, executes the ladder once per
// distinct k, and fans results out. Later misses join the open window and
// just wait. Everything is pooled, so the steady-state path allocates
// nothing per query.
type coalescer struct {
	s        *Server
	maxBatch int
	maxWait  time.Duration

	mu      sync.Mutex
	pending *batchWindow // open window accepting joiners; nil otherwise

	windows sync.Pool // *batchWindow
	items   sync.Pool // *batchItem
	waiters sync.Pool // *batchWaiter
	timers  sync.Pool // *time.Timer, stopped and drained
}

func newCoalescer(s *Server) *coalescer {
	c := &coalescer{s: s, maxBatch: s.cfg.MaxBatch, maxWait: s.cfg.MaxWait}
	c.windows.New = func() any {
		return &batchWindow{byKey: make(map[int64]*batchItem), full: make(chan struct{}, 1)}
	}
	c.items.New = func() any { return new(batchItem) }
	c.waiters.New = func() any { return &batchWaiter{ch: make(chan batchResult, 1)} }
	c.timers.New = func() any {
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		return t
	}
	return c
}

// do serves one cache miss through the coalescer. The returned error is
// non-nil only when ctx expired while waiting on the batch; a searcher
// failure travels inside the batchResult so the caller can map it to the
// same status codes as the direct path.
func (c *coalescer) do(ctx context.Context, row, k int) (batchResult, error) {
	key := int64(row)<<32 | int64(k)
	w := c.waiters.Get().(*batchWaiter)
	w.abandoned.Store(false)

	c.mu.Lock()
	if win := c.pending; win != nil {
		win.joined++
		if it, ok := win.byKey[key]; ok {
			// Singleflight: an identical query is already in the window.
			it.waiters = append(it.waiters, w)
			c.sealIfComplete(win)
			c.mu.Unlock()
			c.s.coalescedDup.Add(1)
			return c.await(ctx, w)
		}
		it := c.newItem(row, k, w)
		win.items = append(win.items, it)
		win.byKey[key] = it
		if len(win.items) >= c.maxBatch {
			// Seal: the leader wakes and executes; newcomers open a fresh
			// window.
			c.pending = nil
			select {
			case win.full <- struct{}{}:
			default:
			}
		} else {
			c.sealIfComplete(win)
		}
		c.mu.Unlock()
		return c.await(ctx, w)
	}

	// Leader: open a window with our own query and hold it for batchmates.
	win := c.windows.Get().(*batchWindow)
	win.joined = 1
	it := c.newItem(row, k, w)
	win.items = append(win.items, it)
	win.byKey[key] = it
	c.pending = win
	c.mu.Unlock()

	t := c.timers.Get().(*time.Timer)
	t.Reset(c.maxWait)
	select {
	case <-win.full:
		if !t.Stop() {
			<-t.C
		}
	case <-t.C:
		c.mu.Lock()
		if c.pending == win {
			c.pending = nil
		}
		c.mu.Unlock()
	}
	c.timers.Put(t)

	c.execute(win)
	c.release(win)
	// Our own result is already sitting in the buffered channel.
	return c.await(ctx, w)
}

// sealIfComplete seals the window early (adaptive sealing) once every
// in-flight request is attached to it: with the whole admitted population
// already waiting, holding the window open for maxWait can only add idle
// latency — nobody is left to join. Called with c.mu held. The inflight
// reading is a snapshot (requests that arrive right after will open the
// next window) and can only err toward sealing early, which is always
// correct: it shrinks a batch, never a result.
func (c *coalescer) sealIfComplete(win *batchWindow) {
	// Below two in flight the reading is meaningless (the handler only
	// routes here above one; direct do() callers bypass the gate), so the
	// window falls back to the maxWait/maxBatch bounds.
	if n := c.s.inflight.Load(); n < 2 || int64(win.joined) < n {
		return
	}
	c.pending = nil
	select {
	case win.full <- struct{}{}:
	default:
	}
}

func (c *coalescer) newItem(row, k int, w *batchWaiter) *batchItem {
	it := c.items.Get().(*batchItem)
	it.row, it.k = row, k
	it.waiters = append(it.waiters, w)
	return it
}

// await blocks until the waiter's result arrives or ctx expires. On expiry
// it races the executor for the waiter: winning the CAS hands the struct to
// the executor for reclamation; losing means a result is in flight, so it
// is drained and returned (the handler decides what to do with a result
// whose client already gave up — same as the direct path).
func (c *coalescer) await(ctx context.Context, w *batchWaiter) (batchResult, error) {
	select {
	case res := <-w.ch:
		c.waiters.Put(w)
		return res, nil
	case <-ctx.Done():
		if w.abandoned.CompareAndSwap(false, true) {
			return batchResult{}, ctx.Err()
		}
		res := <-w.ch
		c.waiters.Put(w)
		return res, nil
	}
}

// execute runs the sealed window: one searcher-ladder walk per distinct k
// (items are sorted so each same-k run becomes one blocked batch scan),
// then fans every item's result out to its waiters.
func (c *coalescer) execute(win *batchWindow) {
	items := win.items
	n := int64(len(items))
	c.s.batches.Add(1)
	c.s.batchedQueries.Add(n)
	for {
		cur := c.s.maxBatchSeen.Load()
		if n <= cur || c.s.maxBatchSeen.CompareAndSwap(cur, n) {
			break
		}
	}

	// The batch context is detached from every member request on purpose:
	// one client's cancellation must not poison its batchmates. The
	// server-wide deadline still applies.
	bctx, cancel := context.WithTimeout(context.Background(), c.s.cfg.RequestTimeout)
	defer cancel()

	// Insertion sort by k (windows are small): each same-k run is served by
	// one tier call, keeping every answer bit-identical to a solo query at
	// that exact k — no cross-k over-fetch to reason about.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].k < items[j-1].k; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	for lo := 0; lo < len(items); {
		hi := lo + 1
		for hi < len(items) && items[hi].k == items[lo].k {
			hi++
		}
		c.serveGroup(bctx, win, items[lo:hi])
		lo = hi
	}

	for _, it := range items {
		for _, w := range it.waiters {
			if w.abandoned.CompareAndSwap(false, true) {
				w.ch <- it.res // buffered: never blocks
			} else {
				c.waiters.Put(w) // waiter gave up; reclaim its struct
			}
		}
	}
}

// serveGroup walks the searcher ladder once for a same-k group, mirroring
// the direct path's degradation semantics: a tier failure logs and falls
// through, a deadline stops the walk, a panic fails the group (contained
// here so batchmate handlers never hang on a torn leader).
func (c *coalescer) serveGroup(ctx context.Context, win *batchWindow, group []*batchItem) {
	defer func() {
		if rec := recover(); rec != nil {
			for _, it := range group {
				if !it.res.settled() {
					it.res = batchResult{err: fmt.Errorf("batch searcher panic: %v", rec)}
				}
			}
		}
	}()
	k := group[0].k
	rows := win.rows[:0]
	for _, it := range group {
		rows = append(rows, it.row)
	}
	win.rows = rows
	var degraded []string
	for _, searcher := range c.s.searchers {
		tops, err := c.tierBatch(ctx, win, searcher, rows, k)
		if err == nil {
			for i, it := range group {
				it.res = batchResult{top: tops[i], servedBy: searcher.Name(), degraded: degraded}
				c.s.countServed(searcher.Name())
			}
			return
		}
		if ctx.Err() != nil {
			for _, it := range group {
				it.res = batchResult{err: context.DeadlineExceeded, degraded: degraded}
			}
			return
		}
		log.Printf("entserver: batch searcher %s failed for %d rows: %v (degrading)",
			searcher.Name(), len(rows), err)
		degraded = append(degraded, searcher.Name())
	}
	err := fmt.Errorf("all searchers failed (%v)", degraded)
	for _, it := range group {
		it.res = batchResult{err: err}
	}
}

// tierBatch queries one tier for a same-k group: the batch entry point when
// the tier has one and the group is worth batching, per-row Search
// otherwise (singleton groups and injected plain TopKSearchers — the latter
// keeps every fault-injection seam behaving exactly as before).
func (c *coalescer) tierBatch(ctx context.Context, win *batchWindow, searcher TopKSearcher, rows []int, k int) ([]matrix.TopK, error) {
	if bs, ok := searcher.(BatchSearcher); ok && len(rows) > 1 {
		return bs.SearchBatch(ctx, rows, k)
	}
	tops := win.tops[:0]
	for _, row := range rows {
		tk, err := searcher.Search(ctx, row, k)
		if err != nil {
			win.tops = tops
			return nil, err
		}
		tops = append(tops, tk)
	}
	win.tops = tops
	return tops, nil
}

// release resets the executed window and returns it and its items to the
// pools. Results have already been fanned out; only struct plumbing is
// recycled here (the TopK payloads travel with the batchResults).
func (c *coalescer) release(win *batchWindow) {
	for _, it := range win.items {
		it.waiters = it.waiters[:0]
		it.res = batchResult{}
		c.items.Put(it)
	}
	win.items = win.items[:0]
	win.joined = 0
	clear(win.byKey)
	win.rows = win.rows[:0]
	win.tops = win.tops[:0]
	select {
	case <-win.full: // a filler may have signaled after the leader timed out
	default:
	}
	c.windows.Put(win)
}
