//go:build !amd64 || purego

package quant

// dotI8Block4AVX2 is never called when hasFastDotI8 is false; this stub
// keeps the blocked dispatch in dot.go portable.
func dotI8Block4AVX2(q0, q1, q2, q3, b []int8, out *[4]int32) {
	panic("quant: dotI8Block4AVX2 without asm")
}
