// Package ann provides a pure-Go IVF-Flat approximate-nearest-neighbor
// index over entity embedding tables. It is the sub-quadratic producer of
// candidate graphs: instead of streaming every source×target score
// (O(n·m·d)), the target table is partitioned into Clusters Voronoi cells by
// a k-means coarse quantizer and each query scores only the NProbe nearest
// cells — O(n·(k + m·nprobe/k)·d) — while reusing the exact same dot kernel
// as the exhaustive tile pass, so every returned score is a true score, and
// full coverage (nprobe = Clusters) reproduces the exhaustive result
// bit-for-bit.
package ann

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"

	"entmatcher/internal/matrix"
	"entmatcher/internal/quant"
)

// Config parameterizes the IVF index. The zero value means "auto": every
// field <= 0 is replaced by a scale-aware default at build time (see
// withDefaults), so callers only set what they want to pin.
type Config struct {
	// Clusters is the number of k-means cells (the IVF "nlist").
	// Default: round(√n) for an n-point corpus.
	Clusters int
	// NProbe is how many cells each query scans, the recall/speed knob.
	// Default: max(1, Clusters/16); clamped to Clusters. nprobe = Clusters
	// is exhaustive and bit-identical to the exact builders.
	NProbe int
	// SampleSize is how many corpus points the quantizer trains on.
	// Default: 32·Clusters, clamped to [Clusters, n]. The quantizer is only
	// a partition — every corpus row is re-assigned exactly after training —
	// so a modest sample suffices and training stays a small fraction of one
	// exhaustive pass.
	SampleSize int
	// Iters bounds the Lloyd refinement iterations. Default: 6 (with
	// k-means++ seeding the partition stabilizes in a handful of rounds, and
	// assignment early-stops when nothing moves).
	Iters int
	// Seed drives sampling and k-means++ seeding; the same (data, Config)
	// always builds the identical index.
	Seed int64
}

// AutoClusters is the cluster count a zero Clusters resolves to for an
// n-point corpus: round(√n), clamped to [1, n]. Exported so the pipeline
// (and the cost planner) can validate explicit NProbe values against the
// auto geometry before any training starts, instead of discovering a
// silently clamped probe count deep inside a build.
func AutoClusters(n int) int {
	k := int(math.Round(math.Sqrt(float64(n))))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// withDefaults resolves the auto fields against an n-point corpus and clamps
// everything to valid ranges.
func (c Config) withDefaults(n int) Config {
	if c.Clusters <= 0 {
		c.Clusters = AutoClusters(n)
	}
	if c.Clusters < 1 {
		c.Clusters = 1
	}
	if c.Clusters > n {
		c.Clusters = n
	}
	if c.NProbe <= 0 {
		c.NProbe = c.Clusters / 16
	}
	if c.NProbe < 1 {
		c.NProbe = 1
	}
	if c.NProbe > c.Clusters {
		c.NProbe = c.Clusters
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 32 * c.Clusters
	}
	if c.SampleSize < c.Clusters {
		c.SampleSize = c.Clusters
	}
	if c.SampleSize > n {
		c.SampleSize = n
	}
	if c.Iters <= 0 {
		c.Iters = 6
	}
	return c
}

// IVF is a built inverted-file index over one embedding table. The corpus
// vectors are copied into a contiguous slab grouped by cell, so a probe
// scans one cache-friendly run of memory; within a cell, ids ascend —
// together with the order-insensitive BoundedTopK selector this keeps query
// results independent of cell layout.
type IVF struct {
	dim, n, k int

	centroids *matrix.Dense // k×dim quantizer
	cnormHalf []float64     // ‖centroid‖²/2, for fused distance ranking

	listPtr []int64   // len k+1; cell c spans listPtr[c]..listPtr[c+1]
	ids     []int32   // len n, corpus row ids, ascending within a cell
	vecs    []float64 // len n·dim, corpus rows in slab order

	// Optional SQ8 side table (AttachQuant): the same corpus rows as int8
	// codes in slab order, plus the quantized table for query folding.
	// SearchQuant scans qvecs and re-ranks survivors against vecs.
	qvecs []int8
	qt    *quant.Table

	// scratch pools each worker's per-query buffers (cell + candidate
	// selectors, quantized-scan state) across queries AND across Search
	// calls, so the query path allocates only its escaping results (see
	// TestSearchAllocsPooled). Pooled per index — never copied.
	scratch sync.Pool
}

// Clusters returns the number of cells the index was built with (after
// defaulting), the exhaustive value for the nprobe knob.
func (ivf *IVF) Clusters() int { return ivf.k }

// Len returns the corpus size.
func (ivf *IVF) Len() int { return ivf.n }

// SizeBytes returns the heap footprint of the index: the vector slab, ids,
// list pointers, and quantizer.
func (ivf *IVF) SizeBytes() int64 {
	return int64(len(ivf.vecs))*8 + int64(len(ivf.ids))*4 +
		int64(len(ivf.listPtr))*8 + int64(ivf.k)*int64(ivf.dim)*8 + int64(len(ivf.cnormHalf))*8
}

// Build trains the coarse quantizer on a sample of data and scatters every
// row into its nearest cell. data must be the *prepared* table (for cosine:
// the row-normalized copy the similarity stream scores with) so that index
// hits carry exactly the streamed scores.
func Build(ctx context.Context, data *matrix.Dense, cfg Config) (*IVF, error) {
	if data == nil {
		return nil, fmt.Errorf("ann: nil corpus")
	}
	n, d := data.Rows(), data.Cols()
	if n == 0 || d == 0 {
		return nil, fmt.Errorf("ann: empty corpus (%d×%d)", n, d)
	}
	cfg = cfg.withDefaults(n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	cent, err := trainCentroids(ctx, data, cfg.Clusters, cfg.SampleSize, cfg.Iters, rng)
	if err != nil {
		return nil, err
	}
	k := cfg.Clusters
	ivf := &IVF{
		dim:       d,
		n:         n,
		k:         k,
		centroids: cent,
		cnormHalf: make([]float64, k),
		listPtr:   make([]int64, k+1),
		ids:       make([]int32, n),
		vecs:      make([]float64, n*d),
	}
	for c := 0; c < k; c++ {
		row := cent.Row(c)
		ivf.cnormHalf[c] = 0.5 * matrix.Dot4(row, row)
	}
	// Assign every corpus row to its cell (parallel; each point owns its
	// slot), then counting-sort into the slab. Scanning rows in ascending
	// order during the scatter leaves ids ascending within each cell.
	assign := make([]int32, n)
	if err := matrix.ParallelRowsCtx(ctx, n, func(i int) {
		assign[i] = int32(nearestCell(data.Row(i), cent, ivf.cnormHalf))
	}); err != nil {
		return nil, err
	}
	counts := make([]int64, k+1)
	for _, c := range assign {
		counts[c+1]++
	}
	for c := 0; c < k; c++ {
		counts[c+1] += counts[c]
	}
	copy(ivf.listPtr, counts)
	next := make([]int64, k)
	copy(next, counts[:k])
	for i := 0; i < n; i++ {
		c := assign[i]
		p := next[c]
		next[c]++
		ivf.ids[p] = int32(i)
		copy(ivf.vecs[int(p)*d:(int(p)+1)*d], data.Row(i))
	}
	return ivf, nil
}

// searchScratch is one worker's reusable query state: a selector for
// ranking cells, one for the candidate top-c, and the quantized-scan
// buffers (query codes, per-candidate int32 scores and their slab
// positions, the pool-threshold heap, and the re-rank pool). The selectors
// are re-sized per query via EnsureK and every slice grows to the largest
// request served, so a warmed scratch handles any (c, nprobe) without
// allocating.
type searchScratch struct {
	cells *matrix.BoundedTopK
	sel   *matrix.BoundedTopK

	codeQ   []int8
	ints    []int32
	pos     []int32
	heapBuf []int32
	poolIDs []int
	poolPos []int32

	// groupKeys is the blocked-search cell merge buffer: packed
	// (cell<<width | queryBit) keys from every query in a group, sorted so
	// one walk yields each probed cell with its membership mask. Owned by
	// the group leader's scratch.
	groupKeys []int64
}

// getScratch fetches a pooled scratch or builds an empty one; EnsureK and
// the ensure* helpers size it for the query at hand.
func (ivf *IVF) getScratch() *searchScratch {
	if sc, ok := ivf.scratch.Get().(*searchScratch); ok {
		return sc
	}
	return &searchScratch{cells: matrix.NewBoundedTopK(0), sel: matrix.NewBoundedTopK(0)}
}

// Search scores each query row against the nprobe nearest cells and returns
// its top-c hits by inner product, in the codebase-wide (value desc, index
// asc) order. queries must share the index's dimensionality and, like the
// corpus, be the prepared (normalized) rows. nprobe and c are clamped to
// [1, Clusters] and [1, Len]; at nprobe = Clusters every corpus point is
// scored and the result equals the exhaustive top-c selection exactly.
//
// Cells are ranked by the query's fused distance score ⟨q,centroid⟩ −
// ‖centroid‖²/2 (the same geometry that assigned points to cells), ties by
// ascending cell id. Candidates arrive selector-side in cell-slab order —
// out of index order — which is why selection runs on the order-insensitive
// BoundedTopK rather than the streaming accumulators' heaps.
func (ivf *IVF) Search(ctx context.Context, queries *matrix.Dense, c, nprobe int) ([]matrix.TopK, error) {
	if queries == nil {
		return nil, fmt.Errorf("ann: nil queries")
	}
	if queries.Cols() != ivf.dim {
		return nil, fmt.Errorf("ann: query dim %d != index dim %d", queries.Cols(), ivf.dim)
	}
	if c < 1 {
		return nil, fmt.Errorf("ann: candidate budget %d < 1", c)
	}
	if c > ivf.n {
		c = ivf.n
	}
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > ivf.k {
		nprobe = ivf.k
	}
	nq := queries.Rows()
	out := make([]matrix.TopK, nq)
	// Queries run in register-blocked groups of three sharing every probed
	// cell's slab reads (matrix.DotBlock3); the ragged remainder takes the
	// per-query path. Scores are bit-identical either way and the selector
	// is order-insensitive, so grouping never changes a result.
	groups := (nq + 2) / 3
	err := matrix.ParallelRowsCtx(ctx, groups, func(g int) {
		qi := g * 3
		if qi+3 <= nq {
			ivf.searchBlock3(queries, qi, c, nprobe, out)
			return
		}
		for ; qi < nq; qi++ {
			out[qi] = ivf.searchOne(queries.Row(qi), c, nprobe)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// copyTopK copies a Finalize result out of pooled selector storage.
func copyTopK(tk matrix.TopK) matrix.TopK {
	return matrix.TopK{
		Values:  append([]float64(nil), tk.Values...),
		Indices: append([]int(nil), tk.Indices...),
	}
}

// searchOne is the per-query float scan: rank cells, score every candidate
// in the probed cells with the per-pair kernel, select top-c.
func (ivf *IVF) searchOne(q []float64, c, nprobe int) matrix.TopK {
	d := ivf.dim
	sc := ivf.getScratch()
	defer ivf.scratch.Put(sc)
	sc.sel.EnsureK(c)
	probes := ivf.rankCells(sc, q, nprobe)
	for _, cell := range probes.Indices {
		lo, hi := ivf.listPtr[cell], ivf.listPtr[cell+1]
		for p := lo; p < hi; p++ {
			sc.sel.Offer(matrix.Dot4(q, ivf.vecs[int(p)*d:(int(p)+1)*d]), int(ivf.ids[p]))
		}
	}
	return copyTopK(sc.sel.Finalize())
}

// searchBlock3 serves queries qi..qi+2 as one blocked pass. Each query keeps
// its own probe ranking (so WHICH cells are scanned per query is exactly the
// per-query path's), but the scans are merged: probed cells are walked in
// ascending id with a 3-bit membership mask, and a cell all three queries
// probe is scanned once through matrix.DotBlock3 — one slab read for three
// scores. Cells probed by a strict subset fall back to the per-pair kernel.
// Values are bit-identical to searchOne's and BoundedTopK is
// order-insensitive, so the changed candidate arrival order cannot change
// any selection.
func (ivf *IVF) searchBlock3(queries *matrix.Dense, qi, c, nprobe int, out []matrix.TopK) {
	d := ivf.dim
	var scs [3]*searchScratch
	var qs [3][]float64
	for j := 0; j < 3; j++ {
		scs[j] = ivf.getScratch()
		scs[j].sel.EnsureK(c)
		qs[j] = queries.Row(qi + j)
	}
	lead := scs[0]
	lead.groupKeys = lead.groupKeys[:0]
	for j := 0; j < 3; j++ {
		probes := ivf.rankCells(scs[j], qs[j], nprobe)
		for _, cell := range probes.Indices {
			lead.groupKeys = append(lead.groupKeys, int64(cell)<<3|int64(1)<<j)
		}
	}
	slices.Sort(lead.groupKeys)
	keys := lead.groupKeys
	var blk [3]float64
	for x := 0; x < len(keys); {
		cell := keys[x] >> 3
		mask := 0
		for ; x < len(keys) && keys[x]>>3 == cell; x++ {
			mask |= int(keys[x] & 7)
		}
		lo, hi := ivf.listPtr[cell], ivf.listPtr[cell+1]
		if mask == 7 {
			for p := lo; p < hi; p++ {
				matrix.DotBlock3(qs[0], qs[1], qs[2], ivf.vecs[int(p)*d:(int(p)+1)*d], &blk)
				id := int(ivf.ids[p])
				scs[0].sel.Offer(blk[0], id)
				scs[1].sel.Offer(blk[1], id)
				scs[2].sel.Offer(blk[2], id)
			}
			continue
		}
		for j := 0; j < 3; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			for p := lo; p < hi; p++ {
				scs[j].sel.Offer(matrix.Dot4(qs[j], ivf.vecs[int(p)*d:(int(p)+1)*d]), int(ivf.ids[p]))
			}
		}
	}
	for j := 0; j < 3; j++ {
		out[qi+j] = copyTopK(scs[j].sel.Finalize())
		ivf.scratch.Put(scs[j])
	}
}

// rankCells selects the nprobe cells nearest to q by the fused distance
// score ⟨q,centroid⟩ − ‖centroid‖²/2, ties by ascending cell id — the one
// ranking both the float and the quantized scan share, so enabling
// quantization never changes WHICH cells a query probes. The returned TopK
// aliases sc.cells.
func (ivf *IVF) rankCells(sc *searchScratch, q []float64, nprobe int) matrix.TopK {
	sc.cells.EnsureK(nprobe)
	for cell := 0; cell < ivf.k; cell++ {
		sc.cells.Offer(matrix.Dot4(q, ivf.centroids.Row(cell))-ivf.cnormHalf[cell], cell)
	}
	return sc.cells.Finalize()
}

// AttachQuant installs an SQ8 side table for this index's corpus: t must be
// the quantized form of the same prepared table the index was built over.
// Codes are scattered into cell-slab order so a probe scans one contiguous
// int8 run, exactly like the float slab. After attaching, SearchQuant
// becomes available; Search is unaffected.
func (ivf *IVF) AttachQuant(t *quant.Table) error {
	if t == nil {
		return fmt.Errorf("ann: nil quantized table")
	}
	if t.Rows() != ivf.n || t.Dim() != ivf.dim {
		return fmt.Errorf("ann: quantized table covers %d×%d but index holds %d×%d",
			t.Rows(), t.Dim(), ivf.n, ivf.dim)
	}
	qvecs := make([]int8, ivf.n*ivf.dim)
	d := ivf.dim
	for p := 0; p < ivf.n; p++ {
		copy(qvecs[p*d:(p+1)*d], t.Row(int(ivf.ids[p])))
	}
	ivf.qvecs = qvecs
	ivf.qt = t
	return nil
}

// HasQuant reports whether an SQ8 side table is attached.
func (ivf *IVF) HasQuant() bool { return ivf.qvecs != nil }

// QuantBytes returns the footprint of the attached quantized slab (0 when
// none): the int8 code slab plus the per-dimension scales.
func (ivf *IVF) QuantBytes() int64 {
	if ivf.qvecs == nil {
		return 0
	}
	return int64(len(ivf.qvecs)) + int64(ivf.dim)*8
}

// ensureQuantScratch sizes the quantized-scan buffers for m candidates and
// a pool bound of p.
func (sc *searchScratch) ensureQuantScratch(dim, m, p int) {
	if cap(sc.codeQ) < dim {
		sc.codeQ = make([]int8, dim)
	}
	sc.codeQ = sc.codeQ[:dim]
	if cap(sc.ints) < m {
		sc.ints = make([]int32, m)
		sc.pos = make([]int32, m)
	}
	sc.ints = sc.ints[:m]
	sc.pos = sc.pos[:m]
	if cap(sc.heapBuf) < p {
		sc.heapBuf = make([]int32, 0, p)
	}
}

// SearchQuant is Search with the candidate scan running on the attached SQ8
// slab: cells are ranked by the float64 centroid scores (so the probed set
// is identical to Search's), every candidate in a probed cell is scored
// with the int8 kernel, and the top factor×c pool — plus every candidate
// tied with the pool boundary — is re-scored against the float slab with
// the exact kernel, from which the final top-c is selected under the
// canonical (value desc, index asc) order. At the default factor the
// results are bit-identical to Search's whenever the pool covers the true
// top-c (conformance-pinned; the boundary-tie rule covers the degenerate
// all-ties regimes exactly). rerank=false skips the float64 phase and
// returns the approximate scores sq·DotI8 — the quantized-only escape
// hatch.
func (ivf *IVF) SearchQuant(ctx context.Context, queries *matrix.Dense, c, nprobe, factor int, rerank bool) ([]matrix.TopK, error) {
	if ivf.qvecs == nil {
		return nil, fmt.Errorf("ann: SearchQuant without an attached quantized table")
	}
	if queries == nil {
		return nil, fmt.Errorf("ann: nil queries")
	}
	if queries.Cols() != ivf.dim {
		return nil, fmt.Errorf("ann: query dim %d != index dim %d", queries.Cols(), ivf.dim)
	}
	if c < 1 {
		return nil, fmt.Errorf("ann: candidate budget %d < 1", c)
	}
	if c > ivf.n {
		c = ivf.n
	}
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > ivf.k {
		nprobe = ivf.k
	}
	nq := queries.Rows()
	out := make([]matrix.TopK, nq)
	var firstErr error
	var errMu sync.Mutex
	record := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// Queries run in register-blocked groups of four sharing every probed
	// cell's int8 slab reads (quant.DotI8Block4); the ragged remainder takes
	// the per-query path. Integer scores are exact, so grouping never
	// changes a candidate score, pool, or selection.
	groups := (nq + 3) / 4
	err := matrix.ParallelRowsCtx(ctx, groups, func(g int) {
		qi := g * 4
		if qi+4 <= nq {
			if err := ivf.searchQuantBlock4(queries, qi, c, nprobe, factor, rerank, out); err != nil {
				record(err)
			}
			return
		}
		for ; qi < nq; qi++ {
			tk, err := ivf.searchQuantOne(queries.Row(qi), c, nprobe, factor, rerank)
			if err != nil {
				record(err)
				return
			}
			out[qi] = tk
		}
	})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// searchQuantOne is the per-query two-phase scan: rank cells by the float
// centroid scores, score every probed candidate with the int8 kernel, then
// re-rank the threshold pool against the float slab.
func (ivf *IVF) searchQuantOne(q []float64, c, nprobe, factor int, rerank bool) (matrix.TopK, error) {
	d := ivf.dim
	sc := ivf.getScratch()
	defer ivf.scratch.Put(sc)
	probes := ivf.rankCells(sc, q, nprobe)
	// Upper-bound the scanned-candidate count for scratch sizing.
	var m int
	for _, cell := range probes.Indices {
		m += int(ivf.listPtr[cell+1] - ivf.listPtr[cell])
	}
	sc.ensureQuantScratch(d, m, quant.PoolSize(factor, c, m))
	sq, err := ivf.qt.QuantizeQuery(q, sc.codeQ)
	if err != nil {
		return matrix.TopK{}, err
	}
	cnt := 0
	for _, cell := range probes.Indices {
		lo, hi := ivf.listPtr[cell], ivf.listPtr[cell+1]
		for pp := lo; pp < hi; pp++ {
			sc.ints[cnt] = quant.DotI8(sc.codeQ, ivf.qvecs[int(pp)*d:(int(pp)+1)*d])
			sc.pos[cnt] = int32(pp)
			cnt++
		}
	}
	return ivf.finishQuant(sc, q, sq, c, factor, rerank, cnt), nil
}

// searchQuantBlock4 serves queries qi..qi+3 as one blocked two-phase pass:
// per-query cell rankings (identical probe sets to the per-query path), a
// merged ascending-cell walk with a 4-bit membership mask, and one
// quant.DotI8Block4 slab read per fully-shared cell. Threshold, pool, and
// re-rank then run per query exactly as in searchQuantOne.
func (ivf *IVF) searchQuantBlock4(queries *matrix.Dense, qi, c, nprobe, factor int, rerank bool, out []matrix.TopK) error {
	d := ivf.dim
	var scs [4]*searchScratch
	var qs [4][]float64
	var sqs [4]float64
	var ms [4]int
	for j := 0; j < 4; j++ {
		scs[j] = ivf.getScratch()
		qs[j] = queries.Row(qi + j)
	}
	defer func() {
		for j := 0; j < 4; j++ {
			ivf.scratch.Put(scs[j])
		}
	}()
	lead := scs[0]
	lead.groupKeys = lead.groupKeys[:0]
	for j := 0; j < 4; j++ {
		probes := ivf.rankCells(scs[j], qs[j], nprobe)
		for _, cell := range probes.Indices {
			lead.groupKeys = append(lead.groupKeys, int64(cell)<<4|int64(1)<<j)
			ms[j] += int(ivf.listPtr[cell+1] - ivf.listPtr[cell])
		}
	}
	for j := 0; j < 4; j++ {
		scs[j].ensureQuantScratch(d, ms[j], quant.PoolSize(factor, c, ms[j]))
		sq, err := ivf.qt.QuantizeQuery(qs[j], scs[j].codeQ)
		if err != nil {
			return err
		}
		sqs[j] = sq
	}
	slices.Sort(lead.groupKeys)
	keys := lead.groupKeys
	var cnt [4]int
	var blk [4]int32
	for x := 0; x < len(keys); {
		cell := keys[x] >> 4
		mask := 0
		for ; x < len(keys) && keys[x]>>4 == cell; x++ {
			mask |= int(keys[x] & 15)
		}
		lo, hi := ivf.listPtr[cell], ivf.listPtr[cell+1]
		if mask == 15 {
			for pp := lo; pp < hi; pp++ {
				quant.DotI8Block4(scs[0].codeQ, scs[1].codeQ, scs[2].codeQ, scs[3].codeQ,
					ivf.qvecs[int(pp)*d:(int(pp)+1)*d], &blk)
				for j := 0; j < 4; j++ {
					scs[j].ints[cnt[j]] = blk[j]
					scs[j].pos[cnt[j]] = int32(pp)
					cnt[j]++
				}
			}
			continue
		}
		for j := 0; j < 4; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			for pp := lo; pp < hi; pp++ {
				scs[j].ints[cnt[j]] = quant.DotI8(scs[j].codeQ, ivf.qvecs[int(pp)*d:(int(pp)+1)*d])
				scs[j].pos[cnt[j]] = int32(pp)
				cnt[j]++
			}
		}
	}
	for j := 0; j < 4; j++ {
		out[qi+j] = ivf.finishQuant(scs[j], qs[j], sqs[j], c, factor, rerank, cnt[j])
	}
	return nil
}

// finishQuant runs the selection tail of a quantized scan: either the
// approximate top-c straight off the int8 scores (rerank=false) or the
// boundary-tie-inclusive pool threshold plus exact float64 re-rank.
func (ivf *IVF) finishQuant(sc *searchScratch, q []float64, sq float64, c, factor int, rerank bool, cnt int) matrix.TopK {
	d := ivf.dim
	if !rerank {
		sc.sel.EnsureK(c)
		for x := 0; x < cnt; x++ {
			sc.sel.Offer(sq*float64(sc.ints[x]), int(ivf.ids[sc.pos[x]]))
		}
		return copyTopK(sc.sel.Finalize())
	}
	th := quant.PoolThreshold(sc.ints[:cnt], quant.PoolSize(factor, c, cnt), sc.heapBuf)
	sc.poolIDs = sc.poolIDs[:0]
	sc.poolPos = sc.poolPos[:0]
	for x := 0; x < cnt; x++ {
		if sc.ints[x] >= th {
			sc.poolIDs = append(sc.poolIDs, int(ivf.ids[sc.pos[x]]))
			sc.poolPos = append(sc.poolPos, sc.pos[x])
		}
	}
	tk := matrix.RerankTopK(sc.sel, sc.poolIDs, c, func(slot int) float64 {
		pp := int(sc.poolPos[slot])
		return matrix.Dot4(q, ivf.vecs[pp*d:(pp+1)*d])
	})
	return copyTopK(tk)
}
