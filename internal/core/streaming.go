package core

import (
	"fmt"
	"time"

	"entmatcher/internal/matrix"
)

// Streaming matchers: the fused-consumer counterparts of DInf, CSLS and the
// mini-batch Sinkhorn matcher. They read ctx.Stream (a tile source computing
// scores on the fly from the embedding tables) instead of ctx.S, folding
// each tile into O(rows + cols·k) running state, so a match never allocates
// the |src|×|tgt| matrix. Results are the same pairs with the same
// tie-breaking as the dense algorithms — the consumers share the dense
// scans' selection logic and visit scores in the same order — which the
// golden equivalence tests in streaming_test.go pin down.

// ErrNoStream is returned when a streaming matcher runs on a context without
// a tile source.
var ErrNoStream = fmt.Errorf("core: context has no similarity stream")

// streamOf extracts the run's tile source, accepting a dense matrix as a
// degenerate tile source so streaming matchers also work on dense runs.
func streamOf(ctx *Context) (matrix.TileSource, error) {
	if ctx == nil {
		return nil, ErrNoMatrix
	}
	if ctx.Stream != nil {
		return ctx.Stream, nil
	}
	if ctx.S != nil {
		return &matrix.DenseTileSource{M: ctx.S}, nil
	}
	return nil, ErrNoStream
}

// assemblePairs converts a completed running argmax into matched pairs,
// reporting rows whose best column is a dummy as abstained — the exact loop
// of GreedyDecider.Decide, including its abstention on degenerate rows whose
// running argmax never advanced past the initial (−Inf, −1) state (all
// streamed scores NaN or −Inf).
func assemblePairs(vals []float64, idx []int, realCols int) (pairs []Pair, abstained []int) {
	pairs = make([]Pair, 0, len(idx))
	for i, j := range idx {
		if j < 0 || j >= realCols {
			abstained = append(abstained, i)
			continue
		}
		pairs = append(pairs, Pair{Source: i, Target: j, Score: vals[i]})
	}
	return pairs, abstained
}

// DInfStream is DInf (raw scores + greedy argmax) running on the tiled
// streaming engine: one pass over the tiles with a fused per-row running
// argmax. Time is the similarity computation itself; extra memory is
// O(rows) accumulator state plus one tile buffer.
type DInfStream struct{}

// NewDInfStream returns the streaming DInf matcher.
func NewDInfStream() *DInfStream { return &DInfStream{} }

// Name returns "DInf" — the algorithm is DInf; only the engine differs.
func (*DInfStream) Name() string { return "DInf" }

// Match streams the score tiles through a running argmax.
func (m *DInfStream) Match(ctx *Context) (*Result, error) {
	st, err := streamOf(ctx)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cc := ctx.Cancellation()
	rows, cols := st.Dims()
	if cols == 0 {
		return nil, fmt.Errorf("greedy: matrix has no columns")
	}
	best := matrix.NewRunningArgmax(rows)
	if err := st.StreamTiles(cc, best); err != nil {
		return nil, err
	}
	pairs, abstained := assemblePairs(best.Vals, best.Idx, cols-ctx.NumDummies)
	return &Result{
		Matcher:    m.Name(),
		Pairs:      pairs,
		Abstained:  abstained,
		Elapsed:    time.Since(start),
		ExtraBytes: best.SizeBytes() + int64(matrix.DefaultTileRows*matrix.DefaultTileCols)*8,
	}, nil
}

// cslsArgmax is the fused second-pass consumer of streaming CSLS: it applies
// the CSLS rescaling 2·S(u,v) − φ_s(u) − φ_t(v) to each streamed score and
// keeps a running argmax of the transformed values. The arithmetic order
// (double, subtract φ_s, subtract φ_t) matches the dense transform's sweep
// order.
type cslsArgmax struct {
	phiS, phiT []float64
	best       *matrix.RunningArgmax
}

func (c *cslsArgmax) ConsumeTile(rowOff, colOff int, tile *matrix.Dense) {
	for r := 0; r < tile.Rows(); r++ {
		row := tile.Row(r)
		ps := c.phiS[rowOff+r]
		best, bi := c.best.Vals[rowOff+r], c.best.Idx[rowOff+r]
		for cI, v := range row {
			tv := v*2 - ps - c.phiT[colOff+cI]
			if tv > best {
				best, bi = tv, colOff+cI
			}
		}
		c.best.Vals[rowOff+r], c.best.Idx[rowOff+r] = best, bi
	}
}

// CSLSStream is CSLS + greedy running on the tiled streaming engine in two
// passes: pass one folds the φ statistics (per-row and per-column top-K
// means) across tiles; pass two re-streams the tiles, rescales each score on
// the fly and keeps a running argmax. Peak memory is O(rows·K + cols·K)
// accumulator state instead of the dense path's extra full matrix; the cost
// is computing the similarity scores twice, which is what makes CSLS
// feasible at scales where its dense rescaled copy alone would not fit.
type CSLSStream struct {
	// K is the φ neighborhood size (the paper's best 1-to-1 value is 1).
	K int
}

// NewCSLSStream returns the streaming CSLS matcher.
func NewCSLSStream(k int) *CSLSStream { return &CSLSStream{K: k} }

// Name returns "CSLS" — the algorithm is CSLS; only the engine differs.
func (*CSLSStream) Name() string { return "CSLS" }

// Match runs the two fused passes.
func (m *CSLSStream) Match(ctx *Context) (*Result, error) {
	st, err := streamOf(ctx)
	if err != nil {
		return nil, err
	}
	if m.K < 1 {
		return nil, fmt.Errorf("csls: K must be positive, got %d", m.K)
	}
	start := time.Now()
	cc := ctx.Cancellation()
	rows, cols := st.Dims()
	if cols == 0 {
		return nil, fmt.Errorf("greedy: matrix has no columns")
	}
	// Pass 1: φ statistics. The column accumulator clamps K to the row count
	// exactly as Dense.ColTopKMeans does.
	kCol := m.K
	if kCol > rows {
		kCol = rows
	}
	rowAcc := matrix.NewRunningTopK(rows, m.K)
	colAcc := matrix.NewColTopKAcc(cols, kCol)
	if err := st.StreamTiles(cc, rowAcc, colAcc); err != nil {
		return nil, err
	}
	phiS, phiT := rowAcc.Means(), colAcc.Means()
	extra := rowAcc.SizeBytes() + colAcc.SizeBytes() + int64(rows+cols)*8

	// Pass 2: fused rescale + argmax.
	best := matrix.NewRunningArgmax(rows)
	if err := st.StreamTiles(cc, &cslsArgmax{phiS: phiS, phiT: phiT, best: best}); err != nil {
		return nil, err
	}
	pairs, abstained := assemblePairs(best.Vals, best.Idx, cols-ctx.NumDummies)
	return &Result{
		Matcher:    m.Name(),
		Pairs:      pairs,
		Abstained:  abstained,
		Elapsed:    time.Since(start),
		ExtraBytes: extra + best.SizeBytes() + int64(matrix.DefaultTileRows*matrix.DefaultTileCols)*8,
	}, nil
}
