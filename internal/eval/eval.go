// Package eval scores matching results against gold alignment links and
// builds the evaluation tasks of the paper's three settings: 1-to-1
// (§ 4), unmatchable entities (§ 5.1) and non 1-to-1 alignment (§ 5.2).
//
// A Task fixes the row space (source entities to align) and the column
// space (candidate target entities) of the similarity matrix, plus the gold
// pairs in that local index space. Matchers never see entity IDs — only
// matrix indices — so the task is the boundary between the KG world and the
// matching world.
package eval

import (
	"fmt"
	"sort"

	"entmatcher/internal/core"
	"entmatcher/internal/kg"
)

// Metrics is the paper's evaluation triple. Under the 1-to-1 setting every
// method emits one prediction per source, so precision = recall = F1; under
// the unmatchable and non 1-to-1 settings they diverge.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	// Correct and Predicted support debugging and aggregation.
	Correct   int
	Predicted int
	Gold      int
}

// String formats the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (%d/%d predicted, %d gold)",
		m.Precision, m.Recall, m.F1, m.Correct, m.Predicted, m.Gold)
}

// Score compares predicted pairs against gold pairs (both in the same index
// space). Duplicate predictions of the same pair are counted once.
func Score(predicted []core.Pair, gold []core.Pair) Metrics {
	goldSet := make(map[[2]int]bool, len(gold))
	for _, g := range gold {
		goldSet[[2]int{g.Source, g.Target}] = true
	}
	seen := make(map[[2]int]bool, len(predicted))
	correct := 0
	distinct := 0
	for _, p := range predicted {
		key := [2]int{p.Source, p.Target}
		if seen[key] {
			continue
		}
		seen[key] = true
		distinct++
		if goldSet[key] {
			correct++
		}
	}
	m := Metrics{Correct: correct, Predicted: distinct, Gold: len(goldSet)}
	if distinct > 0 {
		m.Precision = float64(correct) / float64(distinct)
	}
	if len(goldSet) > 0 {
		m.Recall = float64(correct) / float64(len(goldSet))
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Task is one alignment problem: align SourceIDs (rows) against TargetIDs
// (columns) and compare with Gold, which is expressed in local (row, col)
// indices.
type Task struct {
	Name      string
	SourceIDs []int // graph entity IDs per matrix row
	TargetIDs []int // graph entity IDs per matrix column
	Gold      []core.Pair
}

// dedupSorted returns the sorted distinct values of ids.
func dedupSorted(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// indexOf builds the value -> position map of ids.
func indexOf(ids []int) map[int]int {
	out := make(map[int]int, len(ids))
	for i, id := range ids {
		out[id] = i
	}
	return out
}

// OneToOneTask builds the paper's main evaluation task from a 1-to-1
// dataset: rows are the test-link sources, columns the test-link targets,
// and the gold pairs are the test links. Every row has exactly one gold
// column and vice versa.
func OneToOneTask(pair *kg.Pair) (*Task, error) {
	test := pair.Split.Test
	if test.Len() == 0 {
		return nil, fmt.Errorf("eval: dataset %q has no test links", pair.Name)
	}
	if !test.IsOneToOne() {
		return nil, fmt.Errorf("eval: dataset %q test links are not 1-to-1", pair.Name)
	}
	srcIDs := make([]int, test.Len())
	tgtIDs := make([]int, test.Len())
	gold := make([]core.Pair, test.Len())
	for i, l := range test.Links {
		srcIDs[i] = l.Source
		tgtIDs[i] = l.Target
		gold[i] = core.Pair{Source: i, Target: i}
	}
	return &Task{Name: pair.Name, SourceIDs: srcIDs, TargetIDs: tgtIDs, Gold: gold}, nil
}

// UnmatchableTask builds the § 5.1 task: the row space is the test-link
// sources plus every source entity that participates in no gold link at all
// (the unmatchable entities of DBP15K+); symmetrically for columns. Gold
// pairs remain only the test links, so matching an unmatchable entity costs
// precision.
func UnmatchableTask(pair *kg.Pair) (*Task, error) {
	base, err := OneToOneTask(pair)
	if err != nil {
		return nil, err
	}
	all := pair.AllLinks()
	linkedSrc := all.SourceSet()
	linkedTgt := all.TargetSet()
	srcIDs := base.SourceIDs
	for id := 0; id < pair.Source.NumEntities(); id++ {
		if !linkedSrc[id] {
			srcIDs = append(srcIDs, id)
		}
	}
	tgtIDs := base.TargetIDs
	for id := 0; id < pair.Target.NumEntities(); id++ {
		if !linkedTgt[id] {
			tgtIDs = append(tgtIDs, id)
		}
	}
	return &Task{Name: pair.Name + "+", SourceIDs: srcIDs, TargetIDs: tgtIDs, Gold: base.Gold}, nil
}

// NonOneToOneTask builds the § 5.2 task: rows are the distinct test-link
// sources, columns the distinct test-link targets, and gold contains every
// test link — several per row or column when the dataset has 1-to-many,
// many-to-1 or many-to-many groups.
func NonOneToOneTask(pair *kg.Pair) (*Task, error) {
	test := pair.Split.Test
	if test.Len() == 0 {
		return nil, fmt.Errorf("eval: dataset %q has no test links", pair.Name)
	}
	var srcRaw, tgtRaw []int
	for _, l := range test.Links {
		srcRaw = append(srcRaw, l.Source)
		tgtRaw = append(tgtRaw, l.Target)
	}
	srcIDs := dedupSorted(srcRaw)
	tgtIDs := dedupSorted(tgtRaw)
	srcIdx := indexOf(srcIDs)
	tgtIdx := indexOf(tgtIDs)
	gold := make([]core.Pair, test.Len())
	for i, l := range test.Links {
		gold[i] = core.Pair{Source: srcIdx[l.Source], Target: tgtIdx[l.Target]}
	}
	return &Task{Name: pair.Name, SourceIDs: srcIDs, TargetIDs: tgtIDs, Gold: gold}, nil
}

// ValidationTaskFor builds the matcher-tuning task from the validation
// split, in its own local index space (used by the RL matcher).
func ValidationTaskFor(pair *kg.Pair) (*Task, error) {
	valid := pair.Split.Valid
	if valid.Len() == 0 {
		return nil, fmt.Errorf("eval: dataset %q has no validation links", pair.Name)
	}
	srcIDs := make([]int, valid.Len())
	tgtIDs := make([]int, valid.Len())
	gold := make([]core.Pair, valid.Len())
	for i, l := range valid.Links {
		srcIDs[i] = l.Source
		tgtIDs[i] = l.Target
		gold[i] = core.Pair{Source: i, Target: i}
	}
	return &Task{Name: pair.Name + "-valid", SourceIDs: srcIDs, TargetIDs: tgtIDs, Gold: gold}, nil
}

// LocalAdjacency projects a graph's adjacency onto the task's index space:
// out[i] lists the positions (within ids) of the KG-neighbors of ids[i]
// that are themselves in ids. Used by the RL matcher's coherence term.
func LocalAdjacency(g *kg.Graph, ids []int) [][]int {
	pos := indexOf(ids)
	out := make([][]int, len(ids))
	for i, id := range ids {
		for _, e := range g.Neighbors(id) {
			if p, ok := pos[e.Neighbor]; ok {
				out[i] = append(out[i], p)
			}
		}
	}
	return out
}

// Evaluate scores a matcher result against the task's gold pairs.
func (t *Task) Evaluate(res *core.Result) Metrics {
	return Score(res.Pairs, t.Gold)
}

// HitsAtK returns, for a 1-to-1 gold mapping, the fraction of rows whose
// gold column appears among the row's k highest scores, and the mean
// reciprocal rank of the gold column. Rows without a gold column are
// skipped. These are the Hits@k / MRR metrics of the wider EA literature
// (the paper's recall equals Hits@1).
func HitsAtK(s interface {
	Rows() int
	Cols() int
	Row(int) []float64
}, gold []core.Pair, k int) (hits float64, mrr float64) {
	goldOf := make(map[int]int, len(gold))
	for _, g := range gold {
		goldOf[g.Source] = g.Target
	}
	if len(goldOf) == 0 {
		return 0, 0
	}
	var hit, count int
	var rr float64
	for i := 0; i < s.Rows(); i++ {
		gj, ok := goldOf[i]
		if !ok {
			continue
		}
		count++
		row := s.Row(i)
		goldScore := row[gj]
		rank := 1
		for j, v := range row {
			if v > goldScore || (v == goldScore && j < gj) {
				rank++
			}
		}
		if rank <= k {
			hit++
		}
		rr += 1 / float64(rank)
	}
	if count == 0 {
		return 0, 0
	}
	return float64(hit) / float64(count), rr / float64(count)
}
