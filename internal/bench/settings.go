package bench

import (
	"fmt"
	"time"

	"entmatcher"
	"entmatcher/internal/datagen"
)

// runTable7 reproduces Table 7: the unmatchable-entity setting (DBP15K+)
// under GCN and RREA. Hungarian and SMat run with the dummy-node recipe
// (abstention columns at the validation-calibrated score); the greedy-family
// algorithms run unchanged and pay the precision cost of matching
// unmatchable entities.
func runTable7(cfg *Config, env *Env) ([]*Table, error) {
	var out []*Table
	for _, model := range []struct {
		name string
		pc   entmatcher.PipelineConfig
	}{
		{"GCN", entmatcher.PipelineConfig{Model: entmatcher.ModelGCN, Setting: entmatcher.SettingUnmatchable, WithValidation: true}},
		{"RREA", entmatcher.PipelineConfig{Model: entmatcher.ModelRREA, Setting: entmatcher.SettingUnmatchable, WithValidation: true}},
	} {
		f1 := make(map[string][]float64)
		elapsed := make(map[string]time.Duration)
		var names []string
		for _, prof := range datagen.DBP15K() {
			names = append(names, prof.Name)
			d, err := env.Dataset(prof, cfg.ScaleUnmatchable)
			if err != nil {
				return nil, err
			}
			run, err := env.Run(d, model.pc)
			if err != nil {
				return nil, err
			}
			for _, m := range matcherSet(cfg) {
				var res *entmatcher.MatchResult
				var metrics entmatcher.Metrics
				name := m.Name()
				if name == "Hun." || name == "SMat" {
					res, metrics, err = abstainBudgeted(cfg, env, run, m, cfg.AbstentionQ)
				} else {
					res, metrics, err = matchBudgeted(cfg, env, run, m)
				}
				if err != nil {
					return nil, fmt.Errorf("%s on %s+: %w", name, prof.Name, err)
				}
				f1[name] = append(f1[name], metrics.F1)
				elapsed[name] += res.Elapsed
				cfg.logf("  table7 %s %s+ %s: F1=%.3f P=%.3f R=%.3f abstained=%d",
					model.name, prof.Name, name, metrics.F1, metrics.Precision, metrics.Recall, len(res.Abstained))
			}
		}
		t := &Table{
			ID:      "table7-" + model.name,
			Title:   fmt.Sprintf("DBP15K+ with %s embeddings (measured)", model.name),
			Columns: append(append([]string{}, names...), "T(s)"),
		}
		for _, name := range matcherOrder {
			vals, ok := f1[name]
			if !ok {
				continue
			}
			cells := make([]string, 0, len(vals)+1)
			for _, v := range vals {
				cells = append(cells, f3(v))
			}
			cells = append(cells, secs(elapsed[name].Seconds()/float64(len(names))))
			t.AddRow(name, cells...)
		}
		t.AddNote("Hun. and SMat use dummy abstention columns at the validation q=%.2f score quantile (§ 5.1 recipe)", cfg.AbstentionQ)

		ref := &Table{
			ID:      "table7-" + model.name,
			Title:   fmt.Sprintf("DBP15K+ with %s embeddings (paper reference)", model.name),
			Columns: []string{"D-Z", "D-J", "D-F", "T(s)"},
		}
		for _, name := range matcherOrder {
			v := paperTable7[model.name][name]
			ref.AddRow(name, f3(v.F1[0]), f3(v.F1[1]), f3(v.F1[2]), secs(v.Time))
		}
		out = append(out, t, ref)
	}
	return out, nil
}

// runTable8 reproduces Table 8: the non 1-to-1 alignment setting
// (FB_DBP_MUL) under GCN and RREA, reporting precision, recall and F1.
func runTable8(cfg *Config, env *Env) ([]*Table, error) {
	d, err := env.MulDataset(datagen.FBDBPMul, cfg.ScaleMul)
	if err != nil {
		return nil, err
	}
	var out []*Table
	for _, model := range []struct {
		name string
		pc   entmatcher.PipelineConfig
	}{
		{"GCN", entmatcher.PipelineConfig{Model: entmatcher.ModelGCN, Setting: entmatcher.SettingNonOneToOne, WithValidation: true}},
		{"RREA", entmatcher.PipelineConfig{Model: entmatcher.ModelRREA, Setting: entmatcher.SettingNonOneToOne, WithValidation: true}},
	} {
		run, err := env.Run(d, model.pc)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:      "table8-" + model.name,
			Title:   fmt.Sprintf("FB_DBP_MUL with %s embeddings (measured)", model.name),
			Columns: []string{"P", "R", "F1", "T(s)"},
		}
		for _, m := range matcherSet(cfg) {
			res, metrics, err := matchBudgeted(cfg, env, run, m)
			if err != nil {
				return nil, fmt.Errorf("%s on FB_DBP_MUL: %w", m.Name(), err)
			}
			t.AddRow(m.Name(), f3(metrics.Precision), f3(metrics.Recall), f3(metrics.F1), secs(res.Elapsed.Seconds()))
			cfg.logf("  table8 %s %s: %s", model.name, m.Name(), metrics)
		}
		t.AddNote("rows=%d distinct test sources, cols=%d distinct test targets, gold=%d links", run.S.Rows(), run.S.Cols(), len(run.Task.Gold))

		ref := &Table{
			ID:      "table8-" + model.name,
			Title:   fmt.Sprintf("FB_DBP_MUL with %s embeddings (paper reference)", model.name),
			Columns: []string{"P", "R", "F1", "T(s)"},
		}
		for _, name := range matcherOrder {
			v := paperTable8[model.name][name]
			ref.AddRow(name, f3(v.P), f3(v.R), f3(v.F1), secs(v.Time))
		}
		out = append(out, t, ref)
	}
	return out, nil
}
