package embed

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"entmatcher/internal/kg"
	"entmatcher/internal/matrix"
)

// NameConfig controls the character n-gram name encoder, the stand-in for
// the word-embedding name features of the paper's N- settings.
type NameConfig struct {
	// Dim is the output dimension (the hashing bucket count).
	Dim int
	// MinN and MaxN bound the character n-gram lengths hashed.
	MinN, MaxN int
}

// DefaultNameConfig returns the calibrated name encoder configuration.
func DefaultNameConfig() NameConfig {
	return NameConfig{Dim: 128, MinN: 2, MaxN: 3}
}

// EncodeNames produces unified name embeddings from the surface forms of the
// pair. Both sides hash into the same buckets, so no seed supervision is
// needed — exactly like the paper, where pre-trained word vectors alone
// "already provide very accurate signal for alignment".
func EncodeNames(pair *kg.Pair, cfg NameConfig) (*Embeddings, error) {
	if pair.SourceNames == nil || pair.TargetNames == nil {
		return nil, fmt.Errorf("embed: dataset %q carries no surface forms", pair.Name)
	}
	if cfg.Dim <= 0 || cfg.MinN <= 0 || cfg.MaxN < cfg.MinN {
		return nil, fmt.Errorf("embed: invalid name config %+v", cfg)
	}
	return &Embeddings{
		Source: encodeNameTable(pair.SourceNames, cfg),
		Target: encodeNameTable(pair.TargetNames, cfg),
	}, nil
}

func encodeNameTable(names []string, cfg NameConfig) *matrix.Dense {
	out := matrix.New(len(names), cfg.Dim)
	for i, name := range names {
		encodeName(name, cfg, out.Row(i))
	}
	return out
}

// encodeName hashes the character n-grams of name into dst with sign
// hashing (feature-hashing trick), then L2-normalizes. Word boundaries are
// padded so that word-initial and word-final n-grams are distinguished.
func encodeName(name string, cfg NameConfig, dst []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for _, word := range strings.Fields(strings.ToLower(name)) {
		padded := "^" + word + "$"
		for n := cfg.MinN; n <= cfg.MaxN; n++ {
			for i := 0; i+n <= len(padded); i++ {
				h := fnv.New64a()
				h.Write([]byte(padded[i : i+n]))
				v := h.Sum64()
				bucket := int(v % uint64(len(dst)))
				if v&(1<<63) != 0 {
					dst[bucket]--
				} else {
					dst[bucket]++
				}
			}
		}
	}
	var s float64
	for _, v := range dst {
		s += v * v
	}
	if s == 0 {
		// Empty name: leave the zero vector; it is dissimilar to everything.
		return
	}
	inv := 1 / math.Sqrt(s)
	for j := range dst {
		dst[j] *= inv
	}
}

// Fuse concatenates two unified embedding spaces with the given weights
// (the paper's NR- setting: name fused with structural representations).
// Inputs must be row-normalized; the output is row-normalized, so its cosine
// similarity is the weighted mean of the two input cosines when both rows
// are present.
func Fuse(a, b *Embeddings, weightA, weightB float64) (*Embeddings, error) {
	if weightA < 0 || weightB < 0 || weightA+weightB == 0 {
		return nil, fmt.Errorf("embed: invalid fusion weights %v, %v", weightA, weightB)
	}
	fuse := func(x, y *matrix.Dense) (*matrix.Dense, error) {
		if x.Rows() != y.Rows() {
			return nil, fmt.Errorf("embed: fusing %d rows with %d rows", x.Rows(), y.Rows())
		}
		out := matrix.New(x.Rows(), x.Cols()+y.Cols())
		sa, sb := math.Sqrt(weightA), math.Sqrt(weightB)
		for i := 0; i < x.Rows(); i++ {
			row := out.Row(i)
			for j, v := range x.Row(i) {
				row[j] = sa * v
			}
			off := x.Cols()
			for j, v := range y.Row(i) {
				row[off+j] = sb * v
			}
			var s float64
			for _, v := range row {
				s += v * v
			}
			if s > 0 {
				inv := 1 / math.Sqrt(s)
				for j := range row {
					row[j] *= inv
				}
			}
		}
		return out, nil
	}
	src, err := fuse(a.Source, b.Source)
	if err != nil {
		return nil, err
	}
	tgt, err := fuse(a.Target, b.Target)
	if err != nil {
		return nil, err
	}
	return &Embeddings{Source: src, Target: tgt}, nil
}
