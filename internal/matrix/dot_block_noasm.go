//go:build !amd64 || purego

package matrix

// dotBlock3AVX2 is never called when hasFastDot is false; this stub keeps
// the blocked dispatch in dot_block.go portable.
func dotBlock3AVX2(a0, a1, a2, b []float64, out *[3]float64) {
	panic("matrix: dotBlock3AVX2 without asm")
}
