// Command entmatcher runs the embedding-matching pipeline on a dataset
// directory (as written by cmd/datagen or any OpenEA-style dump with the
// entmatcher file layout) and reports per-algorithm metrics.
//
// Usage:
//
//	entmatcher -data ./data/D-Z                       # all 7 algorithms, RREA
//	entmatcher -data ./data/D-Z -model gcn -m DInf,Hun.
//	entmatcher -data ./data/D-Z -features name        # N- setting
//	entmatcher -data ./data/dz+ -setting unmatchable  # § 5.1 evaluation
//	entmatcher -data ./data/mul -setting non1to1      # § 5.2 evaluation
//	entmatcher -data ./data/100k -stream              # tiled streaming engine
//	entmatcher -data ./data/100k -mem-budget 2048     # stream if dense > 2 GiB
//	entmatcher -data ./data/100k -cand 64             # sparse candidate graphs
//	entmatcher -data ./data/100k -cand 64 -ann 316    # IVF approximate candidates
//	entmatcher -data ./data/100k -cand 64 -ann 316 -nprobe 40  # higher recall
//	entmatcher -data ./data/100k -cand 64 -quant              # SQ8 scan + exact re-rank
//	entmatcher -data ./data/100k -cand 64 -quant -rerank-factor 0  # quantized-only
//	entmatcher -data ./data/100k -cand 64 -save-snapshot p.snap  # persist prep
//	entmatcher -data ./data/100k -cand 64 -load-snapshot p.snap  # skip prep
//	entmatcher -data ./data/100k -auto                 # planner picks the engine
//	entmatcher -data ./data/100k -auto -explain        # ... and shows its work
//	entmatcher -data ./data/100k -auto -target-recall 0.8  # allow approximate plans
//	entmatcher -data ./data/1m -cand 8 -shards 64      # co-clustered sharded matching
//	entmatcher -data ./data/1m -cand 8 -shards 64 -load-snapshot p.snap -out-of-core
//
// With -stream (or when -mem-budget forces it) the score matrix is computed
// in cache-sized tiles and never materialized; the streaming-capable
// matchers (DInf, CSLS, Sink.-mb) run fused against the tile stream.
//
// With -cand C the run also streams, but matching happens on sparse top-C
// candidate graphs, which unlocks the paper's memory-heavy collective
// matchers (RInf, Hun., SMat) at scales where the dense matrix cannot exist.
// At C >= the larger side the sparse matchers reproduce their dense
// counterparts exactly; smaller C trades a little recall for O(n·C) cost.
//
// With -ann K (requires -cand) the top-C graphs come from a pure-Go IVF
// index — a K-cell k-means quantizer over the normalized embeddings —
// instead of the exhaustive streaming pass, making candidate generation
// sub-quadratic. -nprobe trades recall for speed; at -nprobe K the result is
// bit-identical to the exact build.
//
// With -quant (requires -cand) every candidate scan — IVF slabs under -ann,
// the exhaustive pass otherwise — ranks with int8 SQ8 codes ⅛ the size of
// the float64 tables, then re-scores an over-fetched pool exactly so the
// emitted graphs stay bit-identical at the default -rerank-factor 4.
// -rerank-factor 0 disables the exact re-rank (quantized-only scores).
//
// With -shards S (requires -cand) both corpora are partitioned by an IVF
// coarse quantizer into S co-clustered shards; candidate graphs are built per
// shard on a bounded worker pool and reconciled into one global graph the
// sparse matchers run on. -shards 1 is bit-identical to the exact build;
// larger S divides scan work and per-shard memory at bounded recall cost.
//
// With -out-of-core (requires -load-snapshot) the embedding tables are served
// from the snapshot file itself — mmapped where supported, chunked ReadAt
// otherwise — so table-sized heap allocations never happen; combined with
// -shards this is the 1M×1M-under-4GiB configuration.
//
// With -auto the cost-based planner (internal/plan, calibrated from the
// checked-in BENCH_*.json measurements) picks the cheapest engine that fits
// -mem-budget: dense, streaming tiles, sparse top-C graphs, IVF, or SQ8 —
// with -target-recall it may trade candidate recall for speed through
// approximate ANN plans. Explicit engine flags always win over the planner.
// -explain prints every candidate plan with its estimated wall time, peak
// memory, and the machine-readable reason it lost.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"entmatcher"
	"entmatcher/internal/exitcode"
)

// errDegraded marks a run that completed but only after at least one matcher
// degraded to a cheaper fallback tier; main maps it to exit code 3 so
// scripted callers can distinguish "answered, but not by the matcher you
// asked for" from success (0) and failure (1). The convention is shared
// with benchtab and documented in internal/exitcode.
var errDegraded = errors.New("one or more matchers degraded under the time budget")

// usageError marks a command line whose flags parsed individually but combine
// illegally (e.g. -nprobe without -ann). main maps it to exit code 2 — the
// flag package's own convention for a rejected command line — so scripts can
// tell "you typed the command wrong" from "the run failed".
type usageError string

func (e usageError) Error() string { return string(e) }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "entmatcher:", err)
		if errors.Is(err, errDegraded) {
			os.Exit(exitcode.Degraded)
		}
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(exitcode.Usage)
		}
		os.Exit(exitcode.Failure)
	}
}

func run() error {
	var (
		dataDir  = flag.String("data", "", "dataset directory (required)")
		model    = flag.String("model", "rrea", "structural encoder: rrea or gcn")
		features = flag.String("features", "structure", "features: structure, name, fused")
		setting  = flag.String("setting", "1to1", "evaluation setting: 1to1, unmatchable, non1to1")
		matchers = flag.String("m", "", "comma-separated matcher names (default: all seven)")
		sinkL    = flag.Int("sinkhorn-l", 100, "Sinkhorn iterations")
		cslsK    = flag.Int("csls-k", 1, "CSLS neighborhood size")
		abstainQ = flag.Float64("abstention-q", 0.3, "dummy abstention quantile for Hun./SMat under -setting unmatchable")
		embSrc   = flag.String("emb-src", "", "optional externally trained source embeddings (word2vec text format)")
		embTgt   = flag.String("emb-tgt", "", "optional externally trained target embeddings")
		timeout  = flag.Duration("timeout", 0, "per-matcher wall-clock budget; on timeout the run degrades to cheaper matchers (RInf-pb, then DInf) instead of hanging (0 = unbounded)")
		stream   = flag.Bool("stream", false, "use the tiled streaming similarity engine: scores are computed tile by tile and the dense matrix is never allocated (matchers: DInf, CSLS, Sink.-mb)")
		memMiB   = flag.Int64("mem-budget", 0, "dense score-matrix budget in MiB; when the matrix would exceed it the run streams automatically (0 = no cap)")
		cand     = flag.Int("cand", 0, "sparse candidate budget C: stream the scores into top-C candidate graphs and run the sparse matcher twins (CSLS, RInf, Sink., Hun., SMat) on them (0 = dense/streaming as usual)")
		annK     = flag.Int("ann", 0, "approximate candidate generation: build the top-C graphs through an IVF index with this many k-means clusters instead of the exhaustive streaming pass (requires -cand; 0 = exact build)")
		nprobe   = flag.Int("nprobe", 0, "IVF cells scanned per query — the recall/speed knob (requires -ann; 0 = auto, clusters/16; equal to -ann reproduces the exact build bit-for-bit)")
		useQuant = flag.Bool("quant", false, "rank candidate scans with SQ8 int8 codes (8× smaller scan tables) and re-score an over-fetched pool with exact float64 products — bit-identical graphs at the default -rerank-factor (requires -cand; composes with -ann)")
		rerankF  = flag.Int("rerank-factor", 4, "quantized-scan pool over-fetch multiplier: re-rank the quantized top factor×C exactly (requires -quant; 0 = no exact re-rank, serve the quantized approximations)")
		saveSnap = flag.String("save-snapshot", "", "after preparation, persist the prepared tables (and the IVF indexes under -ann, the SQ8 tables under -quant) to this path as a crash-safe snapshot (requires -stream or -cand; written atomically: temp file, fsync, rename)")
		loadSnap = flag.String("load-snapshot", "", "prepare from a previously saved snapshot instead of re-encoding embeddings (requires -stream or -cand; the snapshot must match -features, -setting and -ann, otherwise the run fails with a mismatch error rather than silently rebuilding)")
		shards   = flag.Int("shards", 0, "partition both corpora into this many co-clustered shards and build the candidate graphs per shard on a bounded worker pool, reconciling into one global graph (requires -cand; 1 = bit-identical degenerate build; 0 = unsharded)")
		ooc      = flag.Bool("out-of-core", false, "serve the embedding tables from the snapshot file itself — mmapped where supported, chunked ReadAt otherwise — instead of materializing them on the heap (requires -load-snapshot)")
		auto     = flag.Bool("auto", false, "let the cost-based planner pick the engine — dense, streaming, sparse candidates, IVF, SQ8 — from the task shape and -mem-budget; explicit engine flags (-stream, -cand, -ann, -quant) always override the planner")
		recall   = flag.Float64("target-recall", 0, "minimum estimated candidate recall the planner must meet before it may choose an approximate (IVF) plan (requires -auto; 0 = exact-coverage plans only)")
		explain  = flag.Bool("explain", false, "print the planner's full decision: every candidate plan with estimated wall time, peak memory, and the reason it was rejected (requires -auto)")
	)
	flag.Parse()
	// Flags that only parameterize another flag's engine are rejected when
	// set — at any value, including their defaults — without that engine.
	// flag.Visit reports only flags the command line actually set, so
	// "-rerank-factor 4" without -quant is caught even though 4 is the
	// default value: the user typed a knob that cannot take effect.
	explicitlySet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicitlySet[f.Name] = true })
	if explicitlySet["nprobe"] && *annK == 0 {
		return usageError("-nprobe requires -ann (it is the IVF probe count; without an index it cannot take effect)")
	}
	if explicitlySet["rerank-factor"] && !*useQuant {
		return usageError("-rerank-factor requires -quant (it sizes the quantized scan's re-rank pool; without -quant it cannot take effect)")
	}
	if *recall != 0 && !*auto {
		return usageError("-target-recall requires -auto (only the planner can trade candidate recall for speed)")
	}
	if *explain && !*auto {
		return usageError("-explain requires -auto (there is no plan to explain on an explicitly configured run)")
	}
	if *ooc && *loadSnap == "" {
		return usageError("-out-of-core requires -load-snapshot (only snapshot slabs can back an out-of-core run)")
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}

	d, err := entmatcher.LoadDataset(*dataDir, *dataDir)
	if err != nil {
		return err
	}
	cfg := entmatcher.PipelineConfig{WithValidation: true}
	switch strings.ToLower(*model) {
	case "rrea":
		cfg.Model = entmatcher.ModelRREA
	case "gcn":
		cfg.Model = entmatcher.ModelGCN
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	switch strings.ToLower(*features) {
	case "structure":
		cfg.Features = entmatcher.FeatureStructure
	case "name":
		cfg.Features = entmatcher.FeatureName
	case "fused":
		cfg.Features = entmatcher.FeatureFused
	default:
		return fmt.Errorf("unknown features %q", *features)
	}
	switch strings.ToLower(*setting) {
	case "1to1":
		cfg.Setting = entmatcher.SettingOneToOne
	case "unmatchable":
		cfg.Setting = entmatcher.SettingUnmatchable
	case "non1to1":
		cfg.Setting = entmatcher.SettingNonOneToOne
	default:
		return fmt.Errorf("unknown setting %q", *setting)
	}

	cfg.Streaming = *stream
	if *memMiB < 0 {
		return fmt.Errorf("-mem-budget must be non-negative")
	}
	cfg.MemoryBudgetBytes = *memMiB << 20
	if *cand < 0 {
		return fmt.Errorf("-cand must be non-negative")
	}
	cfg.CandidateBudget = *cand
	if *annK < 0 {
		return fmt.Errorf("-ann must be non-negative")
	}
	if *nprobe < 0 {
		return fmt.Errorf("-nprobe must be non-negative")
	}
	if *annK > 0 {
		if *cand == 0 {
			return fmt.Errorf("-ann requires -cand (the index only accelerates candidate-graph construction)")
		}
		if *nprobe > *annK {
			fmt.Fprintf(os.Stderr, "warning: -nprobe %d exceeds -ann %d clusters; clamping to %d (exact coverage)\n", *nprobe, *annK, *annK)
			*nprobe = *annK
		}
		cfg.ANN = &entmatcher.ANNConfig{Clusters: *annK, NProbe: *nprobe}
	}
	if *rerankF < 0 {
		return fmt.Errorf("-rerank-factor must be non-negative")
	}
	if *useQuant {
		if *cand == 0 {
			return fmt.Errorf("-quant requires -cand (quantized scans only accelerate candidate-graph construction)")
		}
		cfg.Quant = &entmatcher.QuantConfig{RerankFactor: *rerankF, NoRerank: *rerankF == 0}
	}
	if *saveSnap != "" && *loadSnap != "" {
		return fmt.Errorf("-save-snapshot and -load-snapshot are mutually exclusive")
	}
	if (*saveSnap != "" || *loadSnap != "") && !*stream && *cand == 0 {
		return fmt.Errorf("-save-snapshot/-load-snapshot require a streaming run (-stream or -cand): snapshots hold the prepared streaming tables")
	}
	if *loadSnap != "" && (*embSrc != "" || *embTgt != "") {
		return fmt.Errorf("-load-snapshot is incompatible with -emb-src/-emb-tgt (the snapshot already holds the prepared tables)")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative")
	}
	if *shards > 0 && *cand == 0 {
		return fmt.Errorf("-shards requires -cand (only candidate-graph construction is sharded)")
	}
	cfg.Shards = *shards
	cfg.OutOfCore = *ooc
	cfg.SaveSnapshot = *saveSnap
	cfg.LoadSnapshot = *loadSnap
	if *loadSnap != "" && *auto {
		// A snapshot pins the engine shape — the planner has nothing left to
		// decide. Flags that would make it decide anyway contradict the
		// snapshot and are command-line errors; plain -auto is reported as a
		// bypass instead of failing the run.
		if *explain {
			return usageError("-explain contradicts -load-snapshot: the snapshot pins the engine shape, so there is no plan to explain")
		}
		if *recall != 0 {
			return usageError("-target-recall contradicts -load-snapshot: the snapshot pins the engine shape, so the planner cannot trade recall for speed")
		}
		fmt.Println("planner: bypassed (snapshot pins the engine shape)")
		*auto = false
	}
	cfg.Auto = *auto
	cfg.TargetRecall = *recall
	// The validation matrix is not snapshotted; a snapshot-served run skips
	// it (MatchWithAbstention then reports a clear error if requested).
	cfg.WithValidation = *loadSnap == ""

	fmt.Printf("dataset %s: %d/%d entities, %d test links, setting %v, features %v\n",
		d.Name, d.Source.NumEntities(), d.Target.NumEntities(), d.Split.Test.Len(), cfg.Setting, cfg.Features)
	var run *entmatcher.Run
	if *embSrc != "" || *embTgt != "" {
		if *embSrc == "" || *embTgt == "" {
			return fmt.Errorf("-emb-src and -emb-tgt must be given together")
		}
		emb, err := entmatcher.LoadEmbeddings(*embSrc, *embTgt, d)
		if err != nil {
			return err
		}
		run, err = entmatcher.NewPipeline(cfg).PrepareWithEmbeddings(d, emb)
		if err != nil {
			return err
		}
	} else {
		var err error
		run, err = entmatcher.NewPipeline(cfg).Prepare(d)
		if err != nil {
			return err
		}
	}
	defer run.Close()
	if run.OutOfCoreMode != "" {
		fmt.Printf("out-of-core: tables served from %s via %s\n", *loadSnap, run.OutOfCoreMode)
	}
	if *auto {
		if run.Plan == nil {
			fmt.Println("planner: bypassed (explicit engine flags pin the configuration)")
		} else {
			if *explain {
				fmt.Println(run.Plan.Explain())
			} else {
				fmt.Printf("planner: chose %s (est wall %v, est peak %.2f GiB)\n",
					run.Plan.Chosen.Label(), run.Plan.Chosen.EstWall().Round(time.Millisecond),
					float64(run.Plan.Chosen.EstPeakBytes)/(1<<30))
			}
			// The matcher tables below key off the engine flags; adopt the
			// planner's candidate budget so the right twins are offered.
			*cand = run.Plan.Chosen.Knobs.CandidateBudget
		}
	}
	rows, cols := run.Dims()
	if *cand > cols {
		// A budget past the matrix width silently degenerates to the full
		// width anyway; clamp loudly so reported C matches what actually ran.
		fmt.Fprintf(os.Stderr, "warning: -cand %d exceeds the %d target columns; clamping to %d\n", *cand, cols, cols)
		*cand = cols
	}
	streaming := run.Stream != nil
	if streaming {
		fmt.Printf("similarity stream: %d×%d in %d×%d tiles (%.2f GiB dense matrix not allocated)\n\n",
			rows, cols, 256, 512, float64(run.Stream.MatrixBytes())/(1<<30))
	} else {
		fmt.Printf("similarity matrix: %d×%d\n\n", rows, cols)
	}

	available := map[string]entmatcher.Matcher{
		"DInf":     entmatcher.NewDInf(),
		"CSLS":     entmatcher.NewCSLS(*cslsK),
		"RInf":     entmatcher.NewRInf(),
		"RInf-wr":  entmatcher.NewRInfWR(),
		"RInf-pb":  entmatcher.NewRInfPB(50),
		"Sink.":    entmatcher.NewSinkhorn(*sinkL),
		"Sink.-mb": entmatcher.NewSinkhornBlocked(512, *sinkL),
		"Hun.":     entmatcher.NewHungarian(),
		"SMat":     entmatcher.NewSMat(),
		"RL":       entmatcher.NewRL(),
	}
	defaults := []string{"DInf", "CSLS", "RInf", "Sink.", "Hun.", "SMat", "RL"}
	if *cand > 0 {
		// Sparse candidate-graph twins: the collective matchers run on top-C
		// graphs built in one tiled pass, no dense matrix.
		available = map[string]entmatcher.Matcher{
			"DInf":  entmatcher.NewDInfStream(),
			"CSLS":  entmatcher.NewCSLSSparse(*cand, *cslsK),
			"RInf":  entmatcher.NewRInfSparse(*cand),
			"Sink.": entmatcher.NewSinkhornSparse(*cand, *sinkL),
			"Hun.":  entmatcher.NewHungarianSparse(*cand),
			"SMat":  entmatcher.NewSMatSparse(*cand),
		}
		defaults = []string{"DInf", "CSLS", "RInf", "Sink.", "Hun.", "SMat"}
	} else if streaming {
		// Only the fused streaming matchers can run without the dense matrix.
		available = map[string]entmatcher.Matcher{
			"DInf":     entmatcher.NewDInfStream(),
			"CSLS":     entmatcher.NewCSLSStream(*cslsK),
			"Sink.-mb": entmatcher.NewSinkhornBlocked(512, *sinkL),
		}
		defaults = []string{"DInf", "CSLS", "Sink.-mb"}
	}
	var selected []entmatcher.Matcher
	if *matchers == "" {
		for _, name := range defaults {
			selected = append(selected, available[name])
		}
	} else {
		for _, name := range strings.Split(*matchers, ",") {
			m, ok := available[strings.TrimSpace(name)]
			if !ok {
				if *cand > 0 {
					return fmt.Errorf("unknown matcher %q under -cand (have: DInf, CSLS, RInf, Sink., Hun., SMat)", name)
				}
				if streaming {
					return fmt.Errorf("unknown or dense-only matcher %q under -stream (have: DInf, CSLS, Sink.-mb)", name)
				}
				return fmt.Errorf("unknown matcher %q (have: DInf, CSLS, RInf, RInf-wr, RInf-pb, Sink., Sink.-mb, Hun., SMat, RL)", name)
			}
			selected = append(selected, m)
		}
	}

	fmt.Printf("%-8s  %7s  %7s  %7s  %10s  %9s\n", "matcher", "P", "R", "F1", "time", "extra mem")
	anyDegraded := false
	for _, m := range selected {
		var res *entmatcher.MatchResult
		var metrics entmatcher.Metrics
		// The degradation decision keys off the requested matcher's name,
		// not the fallback wrapper's.
		exec := withBudget(m, *timeout, streaming)
		if cfg.Setting == entmatcher.SettingUnmatchable && (m.Name() == "Hun." || m.Name() == "SMat") {
			res, metrics, err = run.MatchWithAbstention(exec, *abstainQ)
		} else {
			res, metrics, err = run.Match(exec)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name(), err)
		}
		fmt.Printf("%-8s  %7.3f  %7.3f  %7.3f  %10v  %6.3fGiB\n",
			m.Name(), metrics.Precision, metrics.Recall, metrics.F1,
			res.Elapsed.Round(time.Millisecond), float64(res.ExtraBytes)/(1<<30))
		if len(res.DegradedFrom) > 0 {
			anyDegraded = true
			fmt.Printf("          ^ degraded to %s (budget %v exhausted by %s)\n",
				res.Matcher, *timeout, strings.Join(res.DegradedFrom, ", "))
		}
	}
	if anyDegraded {
		return errDegraded
	}
	return nil
}

// withBudget wraps m in a degradation chain under the budget: m itself,
// then progressive-blocking RInf, then DInf as the always-answers floor (on
// a streaming run the floor is streaming DInf — the dense fallbacks cannot
// run without the matrix). Tiers whose name duplicates an earlier tier are
// dropped, so asking for DInf with a budget doesn't build DInf→...→DInf. A
// zero budget returns m unchanged.
func withBudget(m entmatcher.Matcher, budget time.Duration, streaming bool) entmatcher.Matcher {
	if budget <= 0 {
		return m
	}
	fallbacks := []entmatcher.Matcher{entmatcher.NewRInfPB(50), entmatcher.NewDInf()}
	if streaming {
		fallbacks = []entmatcher.Matcher{entmatcher.NewDInfStream()}
	}
	tiers := []entmatcher.Matcher{m}
	for _, fb := range fallbacks {
		dup := false
		for _, t := range tiers {
			if t.Name() == fb.Name() {
				dup = true
				break
			}
		}
		if !dup {
			tiers = append(tiers, fb)
		}
	}
	return entmatcher.NewFallback(budget, tiers...)
}
