package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"entmatcher/internal/matrix"
)

func randEmb(rng *rand.Rand, rows, dim int) *matrix.Dense {
	m := matrix.New(rows, dim)
	data := m.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return m
}

func TestMetricString(t *testing.T) {
	if Cosine.String() != "cosine" || Euclidean.String() != "euclidean" || Manhattan.String() != "manhattan" {
		t.Fatal("metric names wrong")
	}
	if Metric(9).String() == "" {
		t.Fatal("unknown metric has empty name")
	}
}

func TestMatrixShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := randEmb(rng, 5, 8)
	tgt := randEmb(rng, 7, 8)
	s, err := Matrix(src, tgt, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 5 || s.Cols() != 7 {
		t.Fatalf("shape %d×%d", s.Rows(), s.Cols())
	}
}

func TestMatrixDimMismatch(t *testing.T) {
	if _, err := Matrix(matrix.New(2, 3), matrix.New(2, 4), Cosine); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestMatrixUnknownMetric(t *testing.T) {
	if _, err := Matrix(matrix.New(1, 1), matrix.New(1, 1), Metric(42)); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestCosineIdenticalVectorIsOne(t *testing.T) {
	e, _ := matrix.NewFromData(1, 3, []float64{1, 2, 3})
	s, err := Matrix(e, e.Clone(), Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.At(0, 0)-1) > 1e-12 {
		t.Fatalf("cos(x,x) = %v", s.At(0, 0))
	}
}

func TestCosineOrthogonalIsZero(t *testing.T) {
	a, _ := matrix.NewFromData(1, 2, []float64{1, 0})
	b, _ := matrix.NewFromData(1, 2, []float64{0, 5})
	s, err := Matrix(a, b, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.At(0, 0)) > 1e-12 {
		t.Fatalf("cos = %v", s.At(0, 0))
	}
}

func TestCosineScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randEmb(rng, 3, 6)
		b := randEmb(rng, 4, 6)
		s1, err := Matrix(a, b, Cosine)
		if err != nil {
			return false
		}
		a.Scale(3.7)
		b.Scale(0.2)
		s2, err := Matrix(a, b, Cosine)
		if err != nil {
			return false
		}
		return matrix.EqualApprox(s1, s2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCosineBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := Matrix(randEmb(rng, 10, 4), randEmb(rng, 10, 4), Cosine)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Data() {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("cosine value %v out of [-1,1]", v)
		}
	}
}

func TestEuclideanSelfDistanceZero(t *testing.T) {
	e, _ := matrix.NewFromData(1, 3, []float64{1, 2, 3})
	s, err := Matrix(e, e.Clone(), Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 0 {
		t.Fatalf("-d(x,x) = %v", s.At(0, 0))
	}
}

func TestEuclideanKnownValue(t *testing.T) {
	a, _ := matrix.NewFromData(1, 2, []float64{0, 0})
	b, _ := matrix.NewFromData(1, 2, []float64{3, 4})
	s, err := Matrix(a, b, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.At(0, 0)+5) > 1e-12 {
		t.Fatalf("-d = %v, want -5", s.At(0, 0))
	}
}

func TestManhattanKnownValue(t *testing.T) {
	a, _ := matrix.NewFromData(1, 2, []float64{0, 0})
	b, _ := matrix.NewFromData(1, 2, []float64{3, -4})
	s, err := Matrix(a, b, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.At(0, 0)+7) > 1e-12 {
		t.Fatalf("-d = %v, want -7", s.At(0, 0))
	}
}

// TestDistanceMetricsOrientation: larger score must mean closer.
func TestDistanceMetricsOrientation(t *testing.T) {
	src, _ := matrix.NewFromData(1, 1, []float64{0})
	tgt, _ := matrix.NewFromData(2, 1, []float64{1, 10})
	for _, metric := range []Metric{Euclidean, Manhattan} {
		s, err := Matrix(src, tgt, metric)
		if err != nil {
			t.Fatal(err)
		}
		if s.At(0, 0) <= s.At(0, 1) {
			t.Fatalf("%v: nearer target does not score higher", metric)
		}
	}
}

func TestTopScoreSTD(t *testing.T) {
	// Row with distinct top scores has higher STD than a row with equal ones.
	flat, _ := matrix.NewFromData(1, 5, []float64{0.9, 0.9, 0.9, 0.9, 0.9})
	sharp, _ := matrix.NewFromData(1, 5, []float64{0.9, 0.5, 0.1, 0.0, -0.5})
	if got := TopScoreSTD(flat, 5); got != 0 {
		t.Fatalf("flat STD = %v", got)
	}
	if got := TopScoreSTD(sharp, 5); got <= 0 {
		t.Fatalf("sharp STD = %v", got)
	}
}

func TestTopScoreSTDEdgeCases(t *testing.T) {
	if TopScoreSTD(matrix.New(0, 0), 5) != 0 {
		t.Fatal("empty matrix STD nonzero")
	}
	if TopScoreSTD(matrix.New(3, 3), 1) != 0 {
		t.Fatal("k=1 STD nonzero")
	}
	// Single-column rows: top-5 degenerates to one value, STD undefined → 0.
	if TopScoreSTD(matrix.New(3, 1), 5) != 0 {
		t.Fatal("single-column STD nonzero")
	}
}
