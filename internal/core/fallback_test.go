package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// stubMatcher is a scriptable tier for fallback tests.
type stubMatcher struct {
	name  string
	err   error
	panic any
	// block makes Match wait for the run's context before failing with its
	// error — a deterministic over-budget matcher.
	block bool
	calls int
}

func (m *stubMatcher) Name() string { return m.name }

func (m *stubMatcher) Match(ctx *Context) (*Result, error) {
	m.calls++
	if m.block {
		<-ctx.Cancellation().Done()
		return nil, ctx.Cancellation().Err()
	}
	if m.panic != nil {
		panic(m.panic)
	}
	if m.err != nil {
		return nil, m.err
	}
	return &Result{Matcher: m.name, Pairs: []Pair{{Source: 0, Target: 0, Score: 1}}}, nil
}

func fallbackCtx(t *testing.T) *Context {
	return &Context{S: mat(t, []float64{1, 0}, []float64{0, 1})}
}

func TestFallbackFirstTierAnswers(t *testing.T) {
	first := &stubMatcher{name: "A"}
	second := &stubMatcher{name: "B"}
	res, err := NewFallback(time.Second, first, second).Match(fallbackCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matcher != "A" || len(res.DegradedFrom) != 0 {
		t.Fatalf("Matcher=%q DegradedFrom=%v", res.Matcher, res.DegradedFrom)
	}
	if second.calls != 0 {
		t.Fatal("second tier must not run when the first answers")
	}
}

// TestFallbackDegradesOnTimeout: a tier that blocks past its budget share
// must be cut off and the next tier must answer, recording the degradation.
func TestFallbackDegradesOnTimeout(t *testing.T) {
	slow := &stubMatcher{name: "slow", block: true}
	cheap := &stubMatcher{name: "cheap"}
	start := time.Now()
	res, err := NewFallback(50*time.Millisecond, slow, cheap).Match(fallbackCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matcher != "cheap" {
		t.Fatalf("answered by %q, want cheap", res.Matcher)
	}
	if len(res.DegradedFrom) != 1 || res.DegradedFrom[0] != "slow" {
		t.Fatalf("DegradedFrom = %v", res.DegradedFrom)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("chain took %v; the blocked tier was not cut off", elapsed)
	}
}

func TestFallbackDegradesOnError(t *testing.T) {
	boom := errors.New("numerical breakdown")
	res, err := NewFallback(0, &stubMatcher{name: "bad", err: boom}, &stubMatcher{name: "ok"}).Match(fallbackCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matcher != "ok" || len(res.DegradedFrom) != 1 {
		t.Fatalf("Matcher=%q DegradedFrom=%v", res.Matcher, res.DegradedFrom)
	}
}

func TestFallbackDegradesOnPanic(t *testing.T) {
	res, err := NewFallback(0, &stubMatcher{name: "crashy", panic: "oob"}, &stubMatcher{name: "ok"}).Match(fallbackCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matcher != "ok" || len(res.DegradedFrom) != 1 || res.DegradedFrom[0] != "crashy" {
		t.Fatalf("Matcher=%q DegradedFrom=%v", res.Matcher, res.DegradedFrom)
	}
}

func TestFallbackAllTiersFail(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	_, err := NewFallback(0, &stubMatcher{name: "a", err: e1}, &stubMatcher{name: "b", err: e2}).Match(fallbackCtx(t))
	if err == nil {
		t.Fatal("want error when every tier fails")
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("joined error should carry both tier errors: %v", err)
	}
}

// TestFallbackHonorsParentCancellation: the caller's own cancellation must
// abort the chain, not degrade past it — a canceled caller does not want a
// cheaper answer, it wants out.
func TestFallbackHonorsParentCancellation(t *testing.T) {
	cc, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := fallbackCtx(t)
	ctx.Ctx = cc
	cheap := &stubMatcher{name: "cheap"}
	_, err := NewFallback(time.Second, &stubMatcher{name: "slow", block: true}, cheap).Match(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cheap.calls != 0 {
		t.Fatal("chain must not degrade past the caller's cancellation")
	}
}

// TestFallbackFinalTierIgnoresBudget: even with the budget fully exhausted,
// the last tier runs (unbudgeted) so the chain always answers.
func TestFallbackFinalTierIgnoresBudget(t *testing.T) {
	res, err := NewFallback(time.Nanosecond,
		&stubMatcher{name: "slow", block: true},
		&stubMatcher{name: "mid", block: true},
		&stubMatcher{name: "floor"},
	).Match(fallbackCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matcher != "floor" {
		t.Fatalf("answered by %q, want floor", res.Matcher)
	}
	if len(res.DegradedFrom) != 2 {
		t.Fatalf("DegradedFrom = %v", res.DegradedFrom)
	}
}

func TestFallbackValidatesInput(t *testing.T) {
	if _, err := NewFallback(0, &stubMatcher{name: "a"}).Match(&Context{}); !errors.Is(err, ErrNoMatrix) {
		t.Fatalf("want ErrNoMatrix, got %v", err)
	}
	if _, err := NewFallback(0).Match(fallbackCtx(t)); err == nil {
		t.Fatal("empty chain must error")
	}
}

func TestFallbackName(t *testing.T) {
	name := NewFallback(0, &stubMatcher{name: "Hun."}, &stubMatcher{name: "DInf"}).Name()
	if name != "Fallback[Hun.→DInf]" {
		t.Fatalf("Name() = %q", name)
	}
}
