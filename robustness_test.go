package entmatcher

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestPipelineConfigValidate(t *testing.T) {
	if err := (PipelineConfig{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := (PipelineConfig{Model: ModelRREA, Features: FeatureFused, Metric: MetricManhattan, Setting: SettingNonOneToOne, FusionWeightName: 0.7, FusionWeightStructure: 0.3}).Validate(); err != nil {
		t.Fatalf("full config rejected: %v", err)
	}
	bad := []PipelineConfig{
		{Model: 99},
		{Features: 99},
		{Metric: 99},
		{Setting: 99},
		{FusionWeightName: -0.1},
		{FusionWeightStructure: math.NaN()},
		{FusionWeightName: math.Inf(1)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("bad config %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

func TestPrepareRejectsBadInput(t *testing.T) {
	if _, err := NewPipeline(PipelineConfig{}).Prepare(nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil dataset: %v", err)
	}
	if _, err := NewPipeline(PipelineConfig{Metric: 42}).Prepare(smallDataset(t)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad metric: %v", err)
	}
	d := smallDataset(t)
	if _, err := NewPipeline(PipelineConfig{}).PrepareWithEmbeddings(d, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil embeddings: %v", err)
	}
}

// TestPrepareRejectsNonFiniteEmbeddings: a poisoned embedding table is
// stopped at the similarity gate, not propagated into the score matrix.
func TestPrepareRejectsNonFiniteEmbeddings(t *testing.T) {
	d := smallDataset(t)
	emb, err := EncodeStructure(d, ModelGCN)
	if err != nil {
		t.Fatal(err)
	}
	emb.Source.Set(1, 2, math.NaN())
	if _, err := NewPipeline(PipelineConfig{}).PrepareWithEmbeddings(d, emb); !errors.Is(err, ErrNonFiniteEmbeddings) {
		t.Fatalf("want ErrNonFiniteEmbeddings, got %v", err)
	}
}

func TestRunWithContextCancellation(t *testing.T) {
	d := smallDataset(t)
	run, err := NewPipeline(PipelineConfig{}).Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	cc, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := run.WithContext(cc).Match(NewHungarian()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The original run is untouched and still works.
	if _, metrics, err := run.Match(NewDInf()); err != nil || metrics.F1 <= 0 {
		t.Fatalf("original run broken: F1=%v err=%v", metrics.F1, err)
	}
}

// TestFallbackDegradesHungarianUnderDeadline is the PR's acceptance
// scenario: Hungarian on a DBP15K-profile task with a 1ms budget must come
// back quickly with a cheaper tier's answer — not an error, not a hang —
// and record the degradation.
func TestFallbackDegradesHungarianUnderDeadline(t *testing.T) {
	d, err := GenerateBenchmark(ProfileDBP15KZhEn, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewPipeline(PipelineConfig{Model: ModelRREA}).Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	// ~1500×1500: Hungarian needs seconds here, so a 1ms budget forces the
	// chain past it (and past RInf-pb) down to DInf, which answers in one
	// unbudgeted pass over the matrix.
	chain := NewFallback(time.Millisecond, NewHungarian(), NewRInfPB(50), NewDInf())
	start := time.Now()
	res, metrics, err := run.Match(chain)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budgeted chain errored: %v", err)
	}
	if res.Matcher == "Hun." {
		t.Fatalf("Hungarian cannot finish %d×%d in 1ms; the budget was not enforced", run.S.Rows(), run.S.Cols())
	}
	found := false
	for _, name := range res.DegradedFrom {
		if name == "Hun." {
			found = true
		}
	}
	if !found {
		t.Fatalf("DegradedFrom = %v, want it to record Hun.", res.DegradedFrom)
	}
	if len(res.Pairs) == 0 || metrics.F1 < 0 {
		t.Fatalf("fallback tier produced no usable result: pairs=%d", len(res.Pairs))
	}
	// The budget plus the floor tier's single pass should be near-instant;
	// the generous bound only guards against a hang on slow CI machines.
	if elapsed > 5*time.Second {
		t.Fatalf("chain took %v, budget enforcement failed", elapsed)
	}
	t.Logf("degraded to %s in %v (F1=%.3f, tried %v)", res.Matcher, elapsed, metrics.F1, res.DegradedFrom)
}

// TestMatchRejectsPoisonedMatrix: the validation gate guards Run.Match
// itself, not just Prepare.
func TestMatchRejectsPoisonedMatrix(t *testing.T) {
	d := smallDataset(t)
	run, err := NewPipeline(PipelineConfig{}).Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	old := run.S.At(0, 0)
	run.S.Set(0, 0, math.Inf(1))
	defer run.S.Set(0, 0, old)
	if _, _, err := run.Match(NewDInf()); !errors.Is(err, ErrNonFiniteScores) {
		t.Fatalf("want ErrNonFiniteScores, got %v", err)
	}
}
