// Package sim computes pairwise similarity matrices between source and
// target entity embeddings — the first half of the embedding-matching stage
// (Algorithm 3, line 1 of the paper).
//
// Three metrics are provided, matching the choices surveyed in § 4.2:
// cosine similarity (the paper's main setting), negative Euclidean distance
// and negative Manhattan distance. All three are oriented so that larger
// scores mean more similar, the convention the matching algorithms assume.
package sim

import (
	"fmt"
	"math"

	"entmatcher/internal/matrix"
)

// Metric identifies a pairwise similarity metric.
type Metric int

const (
	// Cosine is the cosine similarity (the mainstream EA choice).
	Cosine Metric = iota
	// Euclidean is the negated Euclidean distance.
	Euclidean
	// Manhattan is the negated Manhattan (L1) distance.
	Manhattan
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Matrix computes the |src|×|tgt| pairwise score matrix S between the rows
// of src and tgt under the metric. Both inputs must share the embedding
// dimension.
func Matrix(src, tgt *matrix.Dense, metric Metric) (*matrix.Dense, error) {
	if src.Cols() != tgt.Cols() {
		return nil, fmt.Errorf("sim: embedding dims differ: %d vs %d", src.Cols(), tgt.Cols())
	}
	switch metric {
	case Cosine:
		return cosineMatrix(src, tgt)
	case Euclidean:
		return distanceMatrix(src, tgt, false), nil
	case Manhattan:
		return distanceMatrix(src, tgt, true), nil
	default:
		return nil, fmt.Errorf("sim: unknown metric %v", metric)
	}
}

// cosineMatrix normalizes copies of the rows and multiplies. If the rows are
// already unit length (as internal/embed guarantees) the normalization is a
// near no-op but keeps the function correct for arbitrary inputs.
func cosineMatrix(src, tgt *matrix.Dense) (*matrix.Dense, error) {
	return matrix.MulTransposed(normalizedRows(src), normalizedRows(tgt))
}

// normalizedRows returns a row-L2-normalized copy of m; zero rows stay zero.
func normalizedRows(m *matrix.Dense) *matrix.Dense {
	out := m.Clone()
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		if s == 0 {
			continue
		}
		inv := 1 / math.Sqrt(s)
		for j := range row {
			row[j] *= inv
		}
	}
	return out
}

// distanceMatrix computes negated L2 or L1 distances.
func distanceMatrix(src, tgt *matrix.Dense, manhattan bool) *matrix.Dense {
	out := matrix.New(src.Rows(), tgt.Rows())
	d := src.Cols()
	for i := 0; i < src.Rows(); i++ {
		srow := src.Row(i)
		orow := out.Row(i)
		for j := 0; j < tgt.Rows(); j++ {
			trow := tgt.Data()[j*d : (j+1)*d]
			var acc float64
			if manhattan {
				for k, v := range srow {
					acc += math.Abs(v - trow[k])
				}
			} else {
				for k, v := range srow {
					diff := v - trow[k]
					acc += diff * diff
				}
				acc = math.Sqrt(acc)
			}
			orow[j] = -acc
		}
	}
	return out
}

// TopScoreSTD returns the average, over all rows of S, of the standard
// deviation of each row's top-k scores. This is the statistic of the
// paper's Figure 4: low values mean the top candidates are hard to
// distinguish (where CSLS/RInf help most — Pattern 1), high values mean
// the scores are already discriminative (where SMat/RL catch up).
func TopScoreSTD(s *matrix.Dense, k int) float64 {
	if s.Rows() == 0 || s.Cols() == 0 || k < 2 {
		return 0
	}
	tks := s.RowTopK(k)
	var total float64
	var counted int
	for _, tk := range tks {
		n := len(tk.Values)
		if n < 2 {
			continue
		}
		var mean float64
		for _, v := range tk.Values {
			mean += v
		}
		mean /= float64(n)
		var ss float64
		for _, v := range tk.Values {
			diff := v - mean
			ss += diff * diff
		}
		total += math.Sqrt(ss / float64(n))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
