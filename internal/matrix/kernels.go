package matrix

// This file holds the scalar and block (tile) kernels of the streaming
// similarity engine. The streaming path computes the score matrix tile by
// tile straight from the embedding tables, so these kernels are its inner
// loops: a dot product for cosine scores and the shared negated-distance
// scalars for Euclidean/Manhattan. The distance scalars are also used by the
// dense path in internal/sim, which makes streaming and dense distance
// scores bit-identical. The dense MulTransposed kernel now routes through
// the same dot kernel (matmul.go), so dense and streamed cosine scores are
// bit-identical too; consumers that compared with tolerance still hold.
//
// On amd64 with AVX2+FMA the dot product dispatches to the vectorized
// dotAVX2 (dot_amd64.s) for vectors of 16+ elements — the similarity pass is
// >75 % of a streamed sparse match, so this is the single highest-leverage
// kernel in the repository. The dispatch is decided once at startup from
// CPUID, so every score in a process comes from the same kernel and the
// engine's determinism and tile-shape invariance are unaffected; results may
// differ across CPU generations by a few ulps, like any vectorized BLAS.

import "math"

// dotUnroll4 is a 4-way unrolled dot product: four independent accumulators
// break the loop-carried dependency on the single sum, letting the CPU
// overlap the multiply-adds. Summation order is fixed (pairwise at the end),
// so the result is deterministic for given inputs.
func dotUnroll4(a, b []float64) float64 {
	n := len(a)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	var t float64
	for ; i < n; i++ {
		t += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + t
}

// dot is the kernel behind every streamed cosine score: the AVX2+FMA path
// when the CPU supports it and the vector is long enough to fill a vector
// step, the portable unrolled scalar otherwise. Short vectors always take
// the scalar path, so low-dimensional scores are identical on every
// platform.
func dot(a, b []float64) float64 {
	if hasFastDot && len(a) >= 16 {
		return dotAVX2(a, b)
	}
	return dotUnroll4(a, b)
}

// Dot4 exposes the streaming dot kernel to sibling packages; it is the
// kernel behind every streamed cosine score, including the mini-batch Block
// extraction, so all streaming cosine scores share one summation order.
func Dot4(a, b []float64) float64 { return dot(a, b) }

// NegEuclidean returns the negated Euclidean (L2) distance between two
// equal-length vectors, accumulated in index order — the exact arithmetic of
// the dense distance kernel, shared so streaming and dense scores agree
// bit-for-bit.
func NegEuclidean(a, b []float64) float64 {
	var acc float64
	for k, v := range a {
		diff := v - b[k]
		acc += diff * diff
	}
	return -math.Sqrt(acc)
}

// NegManhattan returns the negated Manhattan (L1) distance between two
// equal-length vectors, accumulated in index order.
func NegManhattan(a, b []float64) float64 {
	var acc float64
	for k, v := range a {
		acc += math.Abs(v - b[k])
	}
	return -acc
}

// MulTransposedBlockInto fills dst with the aOff/bOff-offset block of a×bᵀ:
//
//	dst[r][c] = dot(a.Row(aOff+r), b.Row(bOff+c))
//
// for r < dst.Rows(), c < dst.Cols(). The block must lie fully inside the
// product's shape; dimensions are not re-checked here (the streaming driver
// validates once). Source rows are processed in register-blocked groups of
// three sharing each b-row load (dotBlock3), computed in parallel on the
// worker pool; the ragged last group falls back to the per-pair kernel.
// Every element is bit-identical to the per-pair dot, so tile shape and
// blocking never change a score. The b block (dst.Cols() rows of b) is the
// reuse target: at tile sizes it stays resident in cache while every group
// of a rows streams across it, and the blocking cuts its re-read traffic 3×.
func MulTransposedBlockInto(dst, a, b *Dense, aOff, bOff int) {
	d := a.cols
	groups := (dst.rows + 2) / 3
	parallelRows(groups, func(g int) {
		r := g * 3
		if r+3 <= dst.rows {
			a0 := a.data[(aOff+r)*d : (aOff+r+1)*d]
			a1 := a.data[(aOff+r+1)*d : (aOff+r+2)*d]
			a2 := a.data[(aOff+r+2)*d : (aOff+r+3)*d]
			o0, o1, o2 := dst.Row(r), dst.Row(r+1), dst.Row(r+2)
			var blk [3]float64
			for c := range o0 {
				brow := b.data[(bOff+c)*d : (bOff+c+1)*d]
				dotBlock3(a0, a1, a2, brow, &blk)
				o0[c], o1[c], o2[c] = blk[0], blk[1], blk[2]
			}
			return
		}
		for ; r < dst.rows; r++ {
			arow := a.data[(aOff+r)*d : (aOff+r+1)*d]
			orow := dst.Row(r)
			for c := range orow {
				orow[c] = dot(arow, b.data[(bOff+c)*d:(bOff+c+1)*d])
			}
		}
	})
}

// NegEuclideanBlockInto is MulTransposedBlockInto for negated Euclidean
// distances.
func NegEuclideanBlockInto(dst, a, b *Dense, aOff, bOff int) {
	d := a.cols
	parallelRows(dst.rows, func(r int) {
		arow := a.data[(aOff+r)*d : (aOff+r+1)*d]
		orow := dst.Row(r)
		for c := range orow {
			orow[c] = NegEuclidean(arow, b.data[(bOff+c)*d:(bOff+c+1)*d])
		}
	})
}

// NegManhattanBlockInto is MulTransposedBlockInto for negated Manhattan
// distances.
func NegManhattanBlockInto(dst, a, b *Dense, aOff, bOff int) {
	d := a.cols
	parallelRows(dst.rows, func(r int) {
		arow := a.data[(aOff+r)*d : (aOff+r+1)*d]
		orow := dst.Row(r)
		for c := range orow {
			orow[c] = NegManhattan(arow, b.data[(bOff+c)*d:(bOff+c+1)*d])
		}
	})
}
