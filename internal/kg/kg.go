// Package kg models knowledge graphs and alignment link sets.
//
// A knowledge graph is a set of (subject, predicate, object) triples over an
// entity vocabulary and a relation vocabulary. The package mirrors the data
// model of the OpenEA / EntMatcher benchmark suites: two KGs plus a set of
// gold alignment links partitioned into train / validation / test splits.
//
// Entities and relations are interned: the string URI is mapped to a dense
// integer ID on first use, and all adjacency structures are ID-based. This
// keeps the graph representation compact enough for the 100K-class datasets
// and makes entity IDs directly usable as matrix row/column indices.
package kg

import (
	"fmt"
	"sort"
)

// Triple is one (subject, predicate, object) statement, by dense IDs.
type Triple struct {
	Subject  int
	Relation int
	Object   int
}

// Edge is one directed, relation-labelled adjacency entry.
type Edge struct {
	Neighbor int  // entity ID at the other end
	Relation int  // relation ID
	Out      bool // true when the edge leaves this entity (entity is subject)
}

// Graph is a knowledge graph with interned vocabularies.
type Graph struct {
	Name string

	entityNames   []string
	entityIndex   map[string]int
	relationNames []string
	relationIndex map[string]int

	triples []Triple
	adj     [][]Edge // built lazily by Freeze
	frozen  bool
}

// NewGraph returns an empty graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{
		Name:          name,
		entityIndex:   make(map[string]int),
		relationIndex: make(map[string]int),
	}
}

// AddEntity interns name and returns its dense ID. Repeated calls with the
// same name return the same ID.
func (g *Graph) AddEntity(name string) int {
	if id, ok := g.entityIndex[name]; ok {
		return id
	}
	id := len(g.entityNames)
	g.entityNames = append(g.entityNames, name)
	g.entityIndex[name] = id
	g.frozen = false
	return id
}

// AddRelation interns name and returns its dense relation ID.
func (g *Graph) AddRelation(name string) int {
	if id, ok := g.relationIndex[name]; ok {
		return id
	}
	id := len(g.relationNames)
	g.relationNames = append(g.relationNames, name)
	g.relationIndex[name] = id
	return id
}

// AddTriple records a triple using already-interned IDs. It returns an error
// if any ID is out of range.
func (g *Graph) AddTriple(subject, relation, object int) error {
	n, r := len(g.entityNames), len(g.relationNames)
	if subject < 0 || subject >= n || object < 0 || object >= n {
		return fmt.Errorf("kg: entity ID out of range in triple (%d,%d,%d); have %d entities", subject, relation, object, n)
	}
	if relation < 0 || relation >= r {
		return fmt.Errorf("kg: relation ID %d out of range; have %d relations", relation, r)
	}
	g.triples = append(g.triples, Triple{subject, relation, object})
	g.frozen = false
	return nil
}

// AddTripleNames interns the three names and records the triple.
func (g *Graph) AddTripleNames(subject, relation, object string) {
	s := g.AddEntity(subject)
	r := g.AddRelation(relation)
	o := g.AddEntity(object)
	// IDs come from interning, so AddTriple cannot fail.
	if err := g.AddTriple(s, r, o); err != nil {
		panic(err)
	}
}

// NumEntities returns the entity vocabulary size.
func (g *Graph) NumEntities() int { return len(g.entityNames) }

// NumRelations returns the relation vocabulary size.
func (g *Graph) NumRelations() int { return len(g.relationNames) }

// NumTriples returns the triple count.
func (g *Graph) NumTriples() int { return len(g.triples) }

// Triples returns the triple list. Callers must not mutate it.
func (g *Graph) Triples() []Triple { return g.triples }

// EntityName returns the URI of entity id.
func (g *Graph) EntityName(id int) string { return g.entityNames[id] }

// RelationName returns the URI of relation id.
func (g *Graph) RelationName(id int) string { return g.relationNames[id] }

// EntityID returns the dense ID for name, or (-1, false) if unknown.
func (g *Graph) EntityID(name string) (int, bool) {
	id, ok := g.entityIndex[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// Freeze builds the adjacency index. It is idempotent and called implicitly
// by Neighbors and Degree.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	g.adj = make([][]Edge, len(g.entityNames))
	for _, t := range g.triples {
		g.adj[t.Subject] = append(g.adj[t.Subject], Edge{Neighbor: t.Object, Relation: t.Relation, Out: true})
		if t.Object != t.Subject {
			g.adj[t.Object] = append(g.adj[t.Object], Edge{Neighbor: t.Subject, Relation: t.Relation, Out: false})
		}
	}
	g.frozen = true
}

// Neighbors returns the relation-labelled neighborhood of entity id
// (both edge directions). The slice is shared; callers must not mutate it.
func (g *Graph) Neighbors(id int) []Edge {
	g.Freeze()
	return g.adj[id]
}

// Degree returns the undirected degree (number of incident triples,
// counting both directions) of entity id.
func (g *Graph) Degree(id int) int {
	g.Freeze()
	return len(g.adj[id])
}

// AvgDegree returns the mean entity degree, the "Avg. degree" statistic of
// the paper's Table 3. Each triple contributes one degree to its subject and
// one to its object, so the average is 2·|T| / |E| (self-loops contribute 1).
func (g *Graph) AvgDegree() float64 {
	if len(g.entityNames) == 0 {
		return 0
	}
	g.Freeze()
	total := 0
	for _, edges := range g.adj {
		total += len(edges)
	}
	return float64(total) / float64(len(g.entityNames))
}

// Stats summarizes a graph for Table 3-style reporting.
type Stats struct {
	Entities  int
	Relations int
	Triples   int
	AvgDegree float64
}

// Stats returns the dataset statistics of the graph.
func (g *Graph) Stats() Stats {
	return Stats{
		Entities:  g.NumEntities(),
		Relations: g.NumRelations(),
		Triples:   g.NumTriples(),
		AvgDegree: g.AvgDegree(),
	}
}

// DegreeHistogram returns a map from degree value to the number of entities
// with that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	g.Freeze()
	h := make(map[int]int)
	for _, edges := range g.adj {
		h[len(edges)]++
	}
	return h
}

// SortedTriples returns a copy of the triples in deterministic
// (subject, relation, object) order, for stable serialization.
func (g *Graph) SortedTriples() []Triple {
	out := append([]Triple(nil), g.triples...)
	sort.Slice(out, func(a, b int) bool {
		ta, tb := out[a], out[b]
		if ta.Subject != tb.Subject {
			return ta.Subject < tb.Subject
		}
		if ta.Relation != tb.Relation {
			return ta.Relation < tb.Relation
		}
		return ta.Object < tb.Object
	})
	return out
}
