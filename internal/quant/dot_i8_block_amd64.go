//go:build amd64 && !purego

package quant

// dotI8Block4AVX2 computes out[j] = Σ qj[i]·b[i] for four query rows sharing
// one corpus row, widening each corpus chunk once per step. Exact integer
// math throughout, so each out[j] equals dotI8Scalar(qj, b) bit-for-bit.
// All five slices must have equal length. Implemented in
// dot_i8_block_amd64.s.
//
//go:noescape
func dotI8Block4AVX2(q0, q1, q2, q3, b []int8, out *[4]int32)
