package quant

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"entmatcher/internal/matrix"
)

func mustEncode(t *testing.T, m *matrix.Dense) *Table {
	t.Helper()
	q, err := Encode(context.Background(), m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return q
}

func randTable(rng *rand.Rand, n, d int) *matrix.Dense {
	m := matrix.New(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return m
}

// TestEncodeRoundTripBound pins the quantizer's reconstruction guarantee on
// random tables: |code·scale − x| ≤ scale/2 per dimension (up to a few ulps
// of the division), and codes stay in [-127, 127].
func TestEncodeRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randTable(rng, 60, 48)
	q := mustEncode(t, m)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		codes := q.Row(i)
		for j, v := range row {
			c := codes[j]
			if c == -128 {
				t.Fatalf("row %d dim %d: code -128", i, j)
			}
			s := q.Scales()[j]
			err := math.Abs(float64(c)*s - v)
			bound := s/2 + 1e-12*math.Abs(v)
			if err > bound {
				t.Fatalf("row %d dim %d: |decode-x| = %g > scale/2 = %g", i, j, err, s/2)
			}
		}
	}
}

// TestEncodeConstantDimension: a dimension that is identical across rows
// still reconstructs to within scale/2, and a dimension that is zero
// everywhere gets scale 0 with all-zero codes (the zero-scale edge case).
func TestEncodeConstantDimension(t *testing.T) {
	m := matrix.New(5, 3)
	for i := 0; i < 5; i++ {
		m.Row(i)[0] = 0.75 // constant nonzero
		m.Row(i)[1] = 0    // constant zero
		m.Row(i)[2] = float64(i)
	}
	q := mustEncode(t, m)
	if q.Scales()[1] != 0 {
		t.Fatalf("zero dimension got scale %v", q.Scales()[1])
	}
	for i := 0; i < 5; i++ {
		if q.Row(i)[1] != 0 {
			t.Fatalf("zero dimension row %d has code %d", i, q.Row(i)[1])
		}
		// Constant nonzero dim: maxAbs = 0.75 → code must be exactly ±127.
		if q.Row(i)[0] != 127 {
			t.Fatalf("constant dimension row %d has code %d, want 127", i, q.Row(i)[0])
		}
	}
}

// TestEncodeRejectsNonFinite: the encoder re-checks the finiteness the
// similarity gates establish upstream.
func TestEncodeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := matrix.New(3, 4)
		m.Row(1)[2] = bad
		if _, err := Encode(context.Background(), m); err == nil {
			t.Fatalf("Encode accepted %v", bad)
		}
	}
	if _, err := Encode(context.Background(), nil); err == nil {
		t.Fatal("Encode accepted nil table")
	}
	if _, err := Encode(context.Background(), matrix.New(0, 4)); err == nil {
		t.Fatal("Encode accepted empty table")
	}
}

// TestQuantizeQueryApproximation: the per-query scalar times the int8 dot
// must approximate the scale-folded inner product, and a zero query must
// yield sq = 0 with all-zero codes.
func TestQuantizeQueryApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randTable(rng, 40, 32)
	q := mustEncode(t, m)
	codeQ := make([]int8, 32)
	for trial := 0; trial < 10; trial++ {
		qf := make([]float64, 32)
		for j := range qf {
			qf[j] = rng.NormFloat64()
		}
		sq, err := q.QuantizeQuery(qf, codeQ)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.Rows(); i++ {
			approx := sq * float64(DotI8(codeQ, q.Row(i)))
			exact := matrix.Dot4(qf, m.Row(i))
			// Error budget: per-dim table error ≤ scale/2 against |q'| ≤
			// 127·sq codes, plus query rounding ≤ sq/2 per dim against
			// |code| ≤ 127. Generous absolute bound for d=32 gaussians.
			if math.Abs(approx-exact) > 0.8 {
				t.Fatalf("trial %d row %d: approx %v vs exact %v", trial, i, approx, exact)
			}
		}
	}
	zero := make([]float64, 32)
	sq, err := q.QuantizeQuery(zero, codeQ)
	if err != nil {
		t.Fatal(err)
	}
	if sq != 0 {
		t.Fatalf("zero query sq = %v", sq)
	}
	for _, c := range codeQ {
		if c != 0 {
			t.Fatal("zero query produced nonzero code")
		}
	}
	if _, err := q.QuantizeQuery(zero[:4], codeQ); err == nil {
		t.Fatal("QuantizeQuery accepted short query")
	}
}

// TestExportFromDataRoundTrip: Export→FromData must preserve every scan
// result, and FromData must reject each structural corruption class.
func TestExportFromDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randTable(rng, 20, 16)
	q := mustEncode(t, m)
	back, err := FromData(q.Export())
	if err != nil {
		t.Fatalf("FromData: %v", err)
	}
	if back.Rows() != q.Rows() || back.Dim() != q.Dim() {
		t.Fatal("shape changed across round trip")
	}
	for i := 0; i < q.Rows(); i++ {
		a, b := q.Row(i), back.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("code changed at %d,%d", i, j)
			}
		}
	}

	corrupt := func(name string, mut func(d *TableData)) {
		d := q.Export()
		// Deep copy so mutations don't alias the live table.
		cp := &TableData{Rows: d.Rows, Dim: d.Dim,
			Scales: append([]float64(nil), d.Scales...),
			Codes:  append([]int8(nil), d.Codes...)}
		mut(cp)
		if _, err := FromData(cp); err == nil {
			t.Fatalf("FromData accepted corruption %q", name)
		}
	}
	corrupt("nil", func(d *TableData) { *d = TableData{} })
	corrupt("short-codes", func(d *TableData) { d.Codes = d.Codes[:len(d.Codes)-1] })
	corrupt("short-scales", func(d *TableData) { d.Scales = d.Scales[:len(d.Scales)-1] })
	corrupt("nan-scale", func(d *TableData) { d.Scales[0] = math.NaN() })
	corrupt("negative-scale", func(d *TableData) { d.Scales[0] = -1 })
	corrupt("code-min", func(d *TableData) { d.Codes[3] = -128 })
	corrupt("zero-scale-nonzero-code", func(d *TableData) {
		d.Scales[2] = 0
		d.Codes[2] = 5
	})
	if _, err := FromData(nil); err == nil {
		t.Fatal("FromData accepted nil")
	}
}

// TestPoolThreshold pins the boundary semantics: the p-th largest value,
// ties included by the caller's >= comparison, MinInt32 when everything
// pools.
func TestPoolThreshold(t *testing.T) {
	scores := []int32{5, 1, 9, 3, 9, 5, 7}
	buf := make([]int32, 0, 8)
	cases := []struct {
		p    int
		want int32
	}{
		{1, 9}, {2, 9}, {3, 7}, {4, 5}, {5, 5}, {6, 3}, {7, math.MinInt32}, {100, math.MinInt32},
	}
	for _, tc := range cases {
		if got := PoolThreshold(scores, tc.p, buf); got != tc.want {
			t.Fatalf("PoolThreshold(p=%d) = %d, want %d", tc.p, got, tc.want)
		}
	}
	// All-ties: any p below len yields the tied value → the >= pool rule
	// spans the whole collapse.
	tied := []int32{4, 4, 4, 4}
	if got := PoolThreshold(tied, 2, buf); got != 4 {
		t.Fatalf("tied threshold = %d, want 4", got)
	}
}

// FuzzQuantRoundTrip pins the encoder's reconstruction bound on arbitrary
// finite inputs: |decode(encode(x)) − x| ≤ scale/2 per dimension (with an
// ulp allowance for the two divisions involved).
func FuzzQuantRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(make([]byte, 48))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 8 {
			t.Skip()
		}
		vals := make([]float64, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			var u uint64
			for k := 0; k < 8; k++ {
				u = u<<8 | uint64(raw[i+k])
			}
			v := math.Float64frombits(u)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
			vals = append(vals, v)
		}
		// Shape the values into a 2-column table so per-dimension scales
		// see multiple rows.
		d := 2
		n := len(vals) / d
		if n == 0 {
			t.Skip()
		}
		m := matrix.New(n, d)
		for i := 0; i < n; i++ {
			copy(m.Row(i), vals[i*d:(i+1)*d])
		}
		q, err := Encode(context.Background(), m)
		if err != nil {
			t.Fatalf("Encode rejected finite input: %v", err)
		}
		for i := 0; i < n; i++ {
			row := m.Row(i)
			codes := q.Row(i)
			for j, v := range row {
				s := q.Scales()[j]
				err := math.Abs(float64(codes[j])*s - v)
				bound := s/2 + 1e-9*math.Abs(v) + 1e-300
				if err > bound {
					t.Fatalf("row %d dim %d: |decode-x| = %g exceeds scale/2 = %g (x=%g code=%d)",
						i, j, err, s/2, v, codes[j])
				}
			}
		}
	})
}
