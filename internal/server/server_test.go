package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"entmatcher/internal/ann"
	"entmatcher/internal/matrix"
	"entmatcher/internal/quant"
	"entmatcher/internal/snapshot"
)

// testSnapshot builds an in-memory snapshot (with IVF indexes) the way the
// pipeline would: unit-normalized tables, names, trained forward and
// reverse indexes.
func testSnapshot(t *testing.T, srcRows, tgtRows, dim, clusters int) *snapshot.Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	mk := func(rows int) *matrix.Dense {
		m := matrix.New(rows, dim)
		for i := 0; i < rows; i++ {
			row := m.Row(i)
			var s float64
			for j := range row {
				row[j] = rng.NormFloat64()
				s += row[j] * row[j]
			}
			inv := 1 / math.Sqrt(s)
			for j := range row {
				row[j] *= inv
			}
		}
		return m
	}
	src, tgt := mk(srcRows), mk(tgtRows)
	names := func(p string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s/%d", p, i)
		}
		return out
	}
	snap := &snapshot.Snapshot{
		Meta:     snapshot.Meta{Tool: "test", SrcRows: srcRows, TgtRows: tgtRows, Dim: dim},
		SrcTable: src, TgtTable: tgt,
		SrcVocab: names("s", srcRows), TgtVocab: names("t", tgtRows),
	}
	if clusters > 0 {
		fwd, err := ann.Build(context.Background(), tgt, ann.Config{Clusters: clusters, Seed: 1})
		if err != nil {
			t.Fatalf("building forward index: %v", err)
		}
		rev, err := ann.Build(context.Background(), src, ann.Config{Clusters: clusters, Seed: 2})
		if err != nil {
			t.Fatalf("building reverse index: %v", err)
		}
		snap.FwdIndex, snap.RevIndex = fwd.Export(), rev.Export()
		snap.Meta.ANN = &snapshot.ANNMeta{Clusters: clusters, NProbe: clusters, Seed: 1}
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("test snapshot invalid: %v", err)
	}
	return snap
}

// quantize adds SQ8 sections to a test snapshot, the way the pipeline's
// -quant -save-snapshot path would.
func quantize(t *testing.T, snap *snapshot.Snapshot) *snapshot.Snapshot {
	t.Helper()
	ctx := context.Background()
	srcQ, err := quant.Encode(ctx, snap.SrcTable)
	if err != nil {
		t.Fatalf("encoding source table: %v", err)
	}
	tgtQ, err := quant.Encode(ctx, snap.TgtTable)
	if err != nil {
		t.Fatalf("encoding target table: %v", err)
	}
	snap.SrcQuant, snap.TgtQuant = srcQ.Export(), tgtQ.Export()
	snap.Meta.Quant = &snapshot.QuantMeta{RerankFactor: quant.DefaultRerankFactor, Rerank: true}
	if err := snap.Validate(); err != nil {
		t.Fatalf("quantized test snapshot invalid: %v", err)
	}
	return snap
}

func newTestServer(t *testing.T, cfg Config, opts ...Option) *Server {
	t.Helper()
	srv, err := NewFromSnapshot(testSnapshot(t, 40, 40, 8, 4), cfg, opts...)
	if err != nil {
		t.Fatalf("NewFromSnapshot: %v", err)
	}
	return srv
}

func getJSON(t *testing.T, h http.Handler, url string, wantStatus int) map[string]any {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, rec.Code, wantStatus, rec.Body)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("GET %s: invalid JSON %q: %v", url, rec.Body, err)
	}
	return out
}

func TestTopKServedByANNAndAgreesWithExact(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	// nprobe = clusters in the test snapshot, so ann and exact must agree.
	viaANN := getJSON(t, h, "/match/topk?src=s/3&k=5", http.StatusOK)
	if viaANN["served_by"] != "ann" {
		t.Fatalf("served_by = %v, want ann", viaANN["served_by"])
	}
	exact, err := (&exactSearcher{s: srv}).Search(context.Background(), 3, 5)
	if err != nil {
		t.Fatalf("exact search: %v", err)
	}
	results := viaANN["results"].([]any)
	if len(results) != len(exact.Indices) {
		t.Fatalf("ann returned %d results, exact %d", len(results), len(exact.Indices))
	}
	for i, r := range results {
		got := int(r.(map[string]any)["col"].(float64))
		if got != exact.Indices[i] {
			t.Errorf("rank %d: ann col %d, exact col %d", i, got, exact.Indices[i])
		}
	}
}

func TestTopKByRowAndBadQueries(t *testing.T) {
	srv := newTestServer(t, Config{MaxK: 8})
	h := srv.Handler()
	byRow := getJSON(t, h, "/match/topk?row=3&k=2", http.StatusOK)
	if byRow["query"] != "s/3" {
		t.Errorf("row lookup resolved to %v, want s/3", byRow["query"])
	}
	getJSON(t, h, "/match/topk", http.StatusBadRequest)
	getJSON(t, h, "/match/topk?src=nope", http.StatusNotFound)
	getJSON(t, h, "/match/topk?row=999", http.StatusBadRequest)
	getJSON(t, h, "/match/topk?src=s/0&k=0", http.StatusBadRequest)
	getJSON(t, h, "/match/topk?src=s/0&k=9", http.StatusBadRequest) // > MaxK
}

func TestTopKCache(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	first := getJSON(t, h, "/match/topk?src=s/7&k=3", http.StatusOK)
	if c, ok := first["cached"]; ok && c.(bool) {
		t.Fatal("first lookup reported cached")
	}
	second := getJSON(t, h, "/match/topk?src=s/7&k=3", http.StatusOK)
	if second["cached"] != true {
		t.Fatal("second identical lookup not served from cache")
	}
	if srv.cache.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", srv.cache.len())
	}
}

// failSearcher fails every search — the injected "index subsystem down".
type failSearcher struct{ err error }

func (f *failSearcher) Name() string { return "ann" }
func (f *failSearcher) Search(context.Context, int, int) (matrix.TopK, error) {
	return matrix.TopK{}, f.err
}

func TestTopKDegradesToExactAndSurfacesIt(t *testing.T) {
	srv := newTestServer(t, Config{},
		WithPrimarySearcher(&failSearcher{err: errors.New("injected index failure")}))
	resp := getJSON(t, srv.Handler(), "/match/topk?src=s/1&k=3", http.StatusOK)
	if resp["served_by"] != "exact" {
		t.Fatalf("served_by = %v, want exact", resp["served_by"])
	}
	deg := resp["degraded_from"].([]any)
	if len(deg) != 1 || deg[0] != "ann" {
		t.Fatalf("degraded_from = %v, want [ann]", deg)
	}
	if len(resp["results"].([]any)) != 3 {
		t.Fatalf("degraded answer has %d results, want 3", len(resp["results"].([]any)))
	}
}

// panicSearcher panics — the recovery middleware must turn it into a 500.
type panicSearcher struct{}

func (panicSearcher) Name() string { return "ann" }
func (panicSearcher) Search(context.Context, int, int) (matrix.TopK, error) {
	panic("injected searcher panic")
}

func TestPanicBecomes500(t *testing.T) {
	srv := newTestServer(t, Config{}, WithPrimarySearcher(panicSearcher{}))
	resp := getJSON(t, srv.Handler(), "/match/topk?src=s/1&k=3", http.StatusInternalServerError)
	if resp["error"] == nil {
		t.Fatal("500 body carries no error field")
	}
}

// stallSearcher blocks until its request's deadline fires, then reports the
// context error — a hung index shard.
type stallSearcher struct{ entered chan struct{} }

func (s *stallSearcher) Name() string { return "ann" }
func (s *stallSearcher) Search(ctx context.Context, _, _ int) (matrix.TopK, error) {
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	<-ctx.Done()
	return matrix.TopK{}, ctx.Err()
}

func TestDeadlineReturns504(t *testing.T) {
	srv := newTestServer(t, Config{RequestTimeout: 30 * time.Millisecond},
		WithPrimarySearcher(&stallSearcher{}))
	start := time.Now()
	resp := getJSON(t, srv.Handler(), "/match/topk?src=s/1&k=3", http.StatusGatewayTimeout)
	if resp["error"] == nil {
		t.Fatal("504 body carries no error field")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline response took %v", elapsed)
	}
}

func TestOverloadShedsWith429(t *testing.T) {
	stall := &stallSearcher{entered: make(chan struct{}, 1)}
	srv := newTestServer(t, Config{MaxInFlight: 1, RequestTimeout: 2 * time.Second},
		WithPrimarySearcher(stall))
	h := srv.Handler()

	// Occupy the single admission slot with a stalled request...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/match/topk?src=s/1&k=3", nil))
	}()
	<-stall.entered

	// ...every further request must be shed immediately, well inside the
	// in-flight request's own deadline.
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/match/topk?src=s/2&k=3", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shedding took %v — the gate queued instead of shedding", elapsed)
	}
	// Health endpoints stay outside the gate: they must answer during
	// overload, or the orchestrator would kill a merely busy server.
	getJSON(t, h, "/healthz", http.StatusOK)
	getJSON(t, h, "/readyz", http.StatusOK)
	// /statsz too, and it must have counted the shed request.
	if st := getJSON(t, h, "/statsz", http.StatusOK); st["gate_rejections"].(float64) < 1 {
		t.Fatalf("statsz gate_rejections = %v, want >= 1", st["gate_rejections"])
	}
	wg.Wait()
	if got := srv.InFlight(); got != 0 {
		t.Fatalf("in-flight count %d after drain, want 0", got)
	}
}

// failTileSource implements TileSource + CandGraphProducer but fails every
// call — the /align ANN tier's "index subsystem down".
type failTileSource struct {
	inner matrix.TileSource
	err   error
}

func (f *failTileSource) Dims() (int, int) { return f.inner.Dims() }
func (f *failTileSource) StreamTiles(context.Context, ...matrix.TileConsumer) error {
	return f.err
}
func (f *failTileSource) Block(context.Context, []int, []int) (*matrix.Dense, error) {
	return nil, f.err
}
func (f *failTileSource) ProduceCandGraph(context.Context, int) (*matrix.CandGraph, error) {
	return nil, f.err
}
func (f *failTileSource) ProduceCandGraphs(context.Context, int, int) (*matrix.CandGraph, *matrix.CandGraph, error) {
	return nil, nil, f.err
}
func (f *failTileSource) ProduceCandGraphWithColMeans(context.Context, int, int) (*matrix.CandGraph, []float64, error) {
	return nil, nil, f.err
}

func postAlign(t *testing.T, h http.Handler, body string, wantStatus int) map[string]any {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/align", bytes.NewBufferString(body))
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("POST /align %s: status %d, want %d (body %s)", body, rec.Code, wantStatus, rec.Body)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("POST /align: invalid JSON %q: %v", rec.Body, err)
	}
	return out
}

func TestAlignServedByANNTier(t *testing.T) {
	srv := newTestServer(t, Config{})
	resp := postAlign(t, srv.Handler(), `{"matcher":"RInf","cand":8}`, http.StatusOK)
	if resp["matcher"] != "RInf-sparse@ann" {
		t.Fatalf("matcher = %v, want RInf-sparse@ann", resp["matcher"])
	}
	if resp["degraded_from"] != nil {
		t.Fatalf("healthy align degraded: %v", resp["degraded_from"])
	}
	if int(resp["pairs"].(float64)) == 0 {
		t.Fatal("align produced no pairs")
	}
}

func TestAlignDegradesANNToExact(t *testing.T) {
	srv := newTestServer(t, Config{})
	srv2 := newTestServer(t, Config{},
		WithAlignSource(&failTileSource{inner: srv.stream, err: errors.New("injected ann outage")}))
	resp := postAlign(t, srv2.Handler(), `{"matcher":"RInf","cand":8}`, http.StatusOK)
	if resp["matcher"] != "RInf-sparse@exact" {
		t.Fatalf("matcher = %v, want RInf-sparse@exact", resp["matcher"])
	}
	deg, _ := resp["degraded_from"].([]any)
	if len(deg) != 1 || deg[0] != "RInf-sparse@ann" {
		t.Fatalf("degraded_from = %v, want [RInf-sparse@ann]", resp["degraded_from"])
	}
	// The degraded answer must equal the healthy exact answer: same matcher,
	// same candidate graphs, just reached through the ladder.
	healthy := postAlign(t, srv.Handler(), `{"matcher":"RInf","cand":8}`, http.StatusOK)
	if healthy["pairs"] != resp["pairs"] {
		t.Fatalf("degraded run found %v pairs, healthy %v", resp["pairs"], healthy["pairs"])
	}
}

func TestAlignRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	postAlign(t, h, `{"matcher":"nope"}`, http.StatusBadRequest)
	postAlign(t, h, `{bad json`, http.StatusBadRequest)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/align", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /align: status %d, want 405", rec.Code)
	}
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	if resp := getJSON(t, h, "/readyz", http.StatusOK); resp["status"] != "ready" {
		t.Fatalf("readyz = %v, want ready", resp["status"])
	}
	srv.StartDrain()
	if resp := getJSON(t, h, "/readyz", http.StatusServiceUnavailable); resp["status"] != "draining" {
		t.Fatalf("draining readyz = %v, want draining", resp["status"])
	}
	// Liveness is unaffected: draining is healthy, not dead.
	getJSON(t, h, "/healthz", http.StatusOK)
}

func TestNoIndexServesExactOnly(t *testing.T) {
	snap := testSnapshot(t, 12, 12, 4, 0) // no IVF sections
	srv, err := NewFromSnapshot(snap, Config{})
	if err != nil {
		t.Fatalf("NewFromSnapshot: %v", err)
	}
	resp := getJSON(t, srv.Handler(), "/match/topk?src=s/2&k=3", http.StatusOK)
	if resp["served_by"] != "exact" {
		t.Fatalf("served_by = %v, want exact", resp["served_by"])
	}
	ready := getJSON(t, srv.Handler(), "/readyz", http.StatusOK)
	if ready["index"] != false {
		t.Fatal("readyz reports an index the snapshot does not hold")
	}
}

// newQuantServer builds a server over a quantized copy of the deterministic
// test snapshot (seed-pinned, so float twins over the same geometry compare
// bit for bit).
func newQuantServer(t *testing.T, clusters int) *Server {
	t.Helper()
	srv, err := NewFromSnapshot(quantize(t, testSnapshot(t, 40, 40, 8, clusters)), Config{})
	if err != nil {
		t.Fatalf("NewFromSnapshot(quantized): %v", err)
	}
	return srv
}

func TestTopKServedByQuantBitIdenticalToFloat(t *testing.T) {
	for _, tc := range []struct {
		name     string
		clusters int
	}{{"ivf-slabs", 4}, {"exhaustive-scan", 0}} {
		t.Run(tc.name, func(t *testing.T) {
			qsrv := newQuantServer(t, tc.clusters)
			fsrv, err := NewFromSnapshot(testSnapshot(t, 40, 40, 8, tc.clusters), Config{})
			if err != nil {
				t.Fatalf("NewFromSnapshot(float): %v", err)
			}
			for row := 0; row < 40; row += 7 {
				url := fmt.Sprintf("/match/topk?row=%d&k=5", row)
				viaQ := getJSON(t, qsrv.Handler(), url, http.StatusOK)
				if viaQ["served_by"] != "quant" {
					t.Fatalf("served_by = %v, want quant", viaQ["served_by"])
				}
				viaF := getJSON(t, fsrv.Handler(), url, http.StatusOK)
				// JSON float64 encoding round-trips exactly, so deep equality
				// here is bit-identity of scores and order of columns.
				if !reflect.DeepEqual(viaQ["results"], viaF["results"]) {
					t.Fatalf("row %d: quant tier answered differently:\n quant: %v\n float: %v",
						row, viaQ["results"], viaF["results"])
				}
			}
			ready := getJSON(t, qsrv.Handler(), "/readyz", http.StatusOK)
			if ready["quant"] != true {
				t.Fatal("readyz does not report the quant tier")
			}
		})
	}
}

func TestServerServesQuantFromDiskSnapshot(t *testing.T) {
	snap := quantize(t, testSnapshot(t, 20, 20, 8, 4))
	path := filepath.Join(t.TempDir(), "q.snap")
	if err := snap.Write(path); err != nil {
		t.Fatalf("writing snapshot: %v", err)
	}
	srv, err := New(path, Config{})
	if err != nil {
		t.Fatalf("New from disk: %v", err)
	}
	resp := getJSON(t, srv.Handler(), "/match/topk?row=3&k=4", http.StatusOK)
	if resp["served_by"] != "quant" {
		t.Fatalf("served_by = %v, want quant", resp["served_by"])
	}
}

func TestAlignServedByQuantTier(t *testing.T) {
	qsrv := newQuantServer(t, 4)
	resp := postAlign(t, qsrv.Handler(), `{"matcher":"RInf","cand":8}`, http.StatusOK)
	if resp["matcher"] != "RInf-sparse@quant" {
		t.Fatalf("matcher = %v, want RInf-sparse@quant", resp["matcher"])
	}
	if resp["degraded_from"] != nil {
		t.Fatalf("healthy quant align degraded: %v", resp["degraded_from"])
	}
	// The quant tier's answer must equal the float server's: same matcher,
	// same selections, reached through the quantized scan + exact re-rank.
	fsrv := newTestServer(t, Config{})
	healthy := postAlign(t, fsrv.Handler(), `{"matcher":"RInf","cand":8}`, http.StatusOK)
	if healthy["pairs"] != resp["pairs"] {
		t.Fatalf("quant tier found %v pairs, float tier %v", resp["pairs"], healthy["pairs"])
	}
}

// namedFailSearcher fails every search under a configurable tier name.
type namedFailSearcher struct {
	name string
	err  error
}

func (f *namedFailSearcher) Name() string { return f.name }
func (f *namedFailSearcher) Search(context.Context, int, int) (matrix.TopK, error) {
	return matrix.TopK{}, f.err
}

func TestTopKQuantDegradesToANN(t *testing.T) {
	srv := newQuantServer(t, 4)
	if srv.searchers[0].Name() != "quant" {
		t.Fatalf("quantized server's top tier is %q, want quant", srv.searchers[0].Name())
	}
	srv.searchers[0] = &namedFailSearcher{name: "quant", err: errors.New("injected quant failure")}
	resp := getJSON(t, srv.Handler(), "/match/topk?src=s/1&k=3", http.StatusOK)
	if resp["served_by"] != "ann" {
		t.Fatalf("served_by = %v, want ann", resp["served_by"])
	}
	deg := resp["degraded_from"].([]any)
	if len(deg) != 1 || deg[0] != "quant" {
		t.Fatalf("degraded_from = %v, want [quant]", deg)
	}
}

func TestStatszCounters(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	getJSON(t, h, "/match/topk?row=1&k=3", http.StatusOK)         // miss, served by ann
	getJSON(t, h, "/match/topk?row=1&k=3", http.StatusOK)         // cache hit
	postAlign(t, h, `{"matcher":"RInf","cand":8}`, http.StatusOK) // @ann tier
	st := getJSON(t, h, "/statsz", http.StatusOK)
	want := map[string]float64{
		"cache_hits": 1, "cache_misses": 1, "cache_entries": 1,
		"gate_rejections": 0,
		"served_quant":    0, "served_ann": 2, "served_exact": 0, "served_other": 0,
		"in_flight": 0,
	}
	for key, v := range want {
		if got := st[key]; got != v {
			t.Errorf("statsz %s = %v, want %v", key, got, v)
		}
	}
	if st["draining"] != false {
		t.Errorf("statsz draining = %v, want false", st["draining"])
	}
	// The quant tier shows up under served_quant on a quantized server.
	qsrv := newQuantServer(t, 4)
	getJSON(t, qsrv.Handler(), "/match/topk?row=2&k=3", http.StatusOK)
	if qst := getJSON(t, qsrv.Handler(), "/statsz", http.StatusOK); qst["served_quant"] != 1.0 {
		t.Errorf("quantized server statsz served_quant = %v, want 1", qst["served_quant"])
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	srv := newTestServer(t, Config{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	var shed, served, other int64
	var mu sync.Mutex
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/match/topk?row=%d&k=3", ts.URL, i%40))
			if err != nil {
				t.Errorf("request: %v", err)
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				served++
			case http.StatusTooManyRequests:
				shed++
			default:
				other++
			}
		}(i)
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("%d requests got neither 200 nor 429", other)
	}
	if served == 0 {
		t.Fatal("overloaded server served nothing")
	}
	t.Logf("served %d, shed %d", served, shed)
}

// TestMappedServerMatchesLoaded pins the out-of-core serving mode: a server
// whose embedding tables are memory-mapped from the snapshot file answers
// /match/topk and /align bit-identically to one that loaded the same file
// into the heap, and advertises the mode on /readyz. On builds without mmap
// NewMapped must fall back to the full load and still serve the same bits.
func TestMappedServerMatchesLoaded(t *testing.T) {
	snap := quantize(t, testSnapshot(t, 40, 40, 8, 4))
	path := filepath.Join(t.TempDir(), "tables.snap")
	if err := snap.Write(path); err != nil {
		t.Fatalf("writing snapshot: %v", err)
	}
	loaded, err := New(path, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mapped, err := NewMapped(path, Config{})
	if err != nil {
		t.Fatalf("NewMapped: %v", err)
	}
	if mapped.Mapped() != snapshot.MmapSupported {
		t.Fatalf("Mapped() = %v, MmapSupported = %v", mapped.Mapped(), snapshot.MmapSupported)
	}

	lh, mh := loaded.Handler(), mapped.Handler()
	for _, url := range []string{"/match/topk?src=s%2F3&k=5", "/match/topk?row=7&k=3"} {
		want := getJSON(t, lh, url, http.StatusOK)
		got := getJSON(t, mh, url, http.StatusOK)
		if !reflect.DeepEqual(want["results"], got["results"]) {
			t.Fatalf("%s: mapped results %v differ from loaded %v", url, got["results"], want["results"])
		}
		if want["served_by"] != got["served_by"] {
			t.Fatalf("%s: served_by %v vs %v", url, got["served_by"], want["served_by"])
		}
	}
	const body = `{"matcher":"RInf","cand":8}`
	want := postAlign(t, lh, body, http.StatusOK)
	got := postAlign(t, mh, body, http.StatusOK)
	if !reflect.DeepEqual(want["matches"], got["matches"]) {
		t.Fatal("mapped /align matches differ from loaded")
	}

	ready := getJSON(t, mh, "/readyz", http.StatusOK)
	if ready["mmap"] != mapped.Mapped() {
		t.Fatalf("/readyz mmap = %v, want %v", ready["mmap"], mapped.Mapped())
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
}
