// Package conformance is the cross-engine conformance harness: it checks
// every matcher and matrix kernel against brute-force oracles (oracle.go) and
// algebraic metamorphic properties (metamorphic.go) on a fixed suite of
// adversarial inputs (generate.go) — dense ties, duplicate rows, 1-ulp
// near-equal floats, non-square shapes, dummy columns and tiny dimensions.
//
// The harness exists because the repository runs the same seven paper
// algorithms on two engines — the dense matrix path and the tiled streaming
// path — plus blocked approximations, and "looks right on random inputs" is
// not a contract. Every divergence the harness has flushed out is pinned by a
// named regression test next to the fix (see DESIGN.md § 9, "Conformance &
// oracles").
package conformance

import (
	"fmt"
	"sort"

	"entmatcher/internal/core"
	"entmatcher/internal/matrix"
)

// Entry describes one paper algorithm under conformance test: its dense
// constructor and, when the algorithm has a streaming-engine twin, the
// constructor of that twin (nil otherwise).
type Entry struct {
	Name   string
	New    func() core.Matcher
	Stream func() core.Matcher
}

// Matchers returns the paper's Table 2 algorithms as tested by the harness.
// RL is excluded here and exercised separately: its stochastic policy is
// checked for determinism under a fixed seed and for structural invariants,
// not for oracle equality.
func Matchers() []Entry {
	return []Entry{
		{Name: "DInf", New: func() core.Matcher { return core.NewDInf() },
			Stream: func() core.Matcher { return core.NewDInfStream() }},
		{Name: "CSLS", New: func() core.Matcher { return core.NewCSLS(1) },
			Stream: func() core.Matcher { return core.NewCSLSStream(1) }},
		{Name: "RInf", New: func() core.Matcher { return core.NewRInf() }},
		{Name: "RInf-wr", New: func() core.Matcher { return core.NewRInfWR() }},
		{Name: "Sink.", New: func() core.Matcher { return core.NewSinkhorn(core.DefaultSinkhornIterations) }},
		{Name: "Hun.", New: func() core.Matcher { return core.NewHungarian() }},
		{Name: "SMat", New: func() core.Matcher { return core.NewSMat() }},
	}
}

// TileShapes are the tile geometries every streaming equivalence check runs
// under: degenerate 1×1 tiles, small odd shapes that misalign with matrix
// bounds, and the default geometry. Equality must hold for all of them — the
// TileSource contract promises the streamed visit order is row-major and
// block-ordered, so tile shape must never leak into results.
var TileShapes = [][2]int{{1, 1}, {2, 3}, {5, 4}, {0, 0}} // {0,0} = default

// StreamContext wraps a dense context into a streaming one (S nil, Stream a
// DenseTileSource of the given tile shape) so streaming-capable matchers can
// be run against the identical scores.
func StreamContext(ctx *core.Context, tileRows, tileCols int) *core.Context {
	out := *ctx
	out.S = nil
	out.Stream = &matrix.DenseTileSource{M: ctx.S, TileRows: tileRows, TileCols: tileCols}
	return &out
}

// Canonical returns pairs sorted by (Source, Target, Score) without mutating
// the input. Deciders emit pairs in scan order; canonicalizing first makes
// results comparable across engines and permutations.
func Canonical(pairs []core.Pair) []core.Pair {
	out := append([]core.Pair(nil), pairs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Source != out[b].Source {
			return out[a].Source < out[b].Source
		}
		if out[a].Target != out[b].Target {
			return out[a].Target < out[b].Target
		}
		return out[a].Score < out[b].Score
	})
	return out
}

// CanonicalInts returns a sorted copy of xs.
func CanonicalInts(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// SelectionsEqual reports whether two results pick the same (Source, Target)
// pairs and the same abstained rows, ignoring scores (which legitimately
// differ across engines that transform scores differently, e.g. under a
// metamorphic input transform).
func SelectionsEqual(a, b *core.Result) bool {
	ap, bp := Canonical(a.Pairs), Canonical(b.Pairs)
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if ap[i].Source != bp[i].Source || ap[i].Target != bp[i].Target {
			return false
		}
	}
	aa, ba := CanonicalInts(a.Abstained), CanonicalInts(b.Abstained)
	if len(aa) != len(ba) {
		return false
	}
	for i := range aa {
		if aa[i] != ba[i] {
			return false
		}
	}
	return true
}

// ResultsIdentical reports whether two results agree exactly: same pairs
// (including scores, bit for bit) and same abstained rows after
// canonicalization.
func ResultsIdentical(a, b *core.Result) bool {
	ap, bp := Canonical(a.Pairs), Canonical(b.Pairs)
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	aa, ba := CanonicalInts(a.Abstained), CanonicalInts(b.Abstained)
	if len(aa) != len(ba) {
		return false
	}
	for i := range aa {
		if aa[i] != ba[i] {
			return false
		}
	}
	return true
}

// DescribeDiff renders the first divergence between two results for test
// failure messages.
func DescribeDiff(a, b *core.Result) string {
	ap, bp := Canonical(a.Pairs), Canonical(b.Pairs)
	n := len(ap)
	if len(bp) < n {
		n = len(bp)
	}
	for i := 0; i < n; i++ {
		if ap[i] != bp[i] {
			return fmt.Sprintf("pair %d: %+v vs %+v", i, ap[i], bp[i])
		}
	}
	if len(ap) != len(bp) {
		return fmt.Sprintf("pair count %d vs %d", len(ap), len(bp))
	}
	return fmt.Sprintf("abstained %v vs %v", CanonicalInts(a.Abstained), CanonicalInts(b.Abstained))
}

// CheckStructure verifies the universal result invariants every matcher must
// satisfy on a rows×cols matrix with numDummies trailing dummy columns:
// pairs and abstentions partition the source rows exactly (each row appears
// once), every target lies inside the real (non-dummy) column range, and
// neither list contains out-of-range rows. It returns nil when the result is
// structurally sound.
func CheckStructure(res *core.Result, rows, cols, numDummies int) error {
	seen := make([]int, rows)
	for _, p := range res.Pairs {
		if p.Source < 0 || p.Source >= rows {
			return fmt.Errorf("pair source %d outside [0,%d)", p.Source, rows)
		}
		if p.Target < 0 || p.Target >= cols-numDummies {
			return fmt.Errorf("row %d: target %d outside real columns [0,%d)", p.Source, p.Target, cols-numDummies)
		}
		seen[p.Source]++
	}
	for _, i := range res.Abstained {
		if i < 0 || i >= rows {
			return fmt.Errorf("abstained row %d outside [0,%d)", i, rows)
		}
		seen[i]++
	}
	for i, c := range seen {
		if c != 1 {
			return fmt.Errorf("row %d appears %d times across pairs+abstained, want exactly 1", i, c)
		}
	}
	return nil
}

// OneToOne verifies that no two pairs share a target column — the constraint
// Hun. and SMat guarantee (the paper's Table 2 "1-to-1" column).
func OneToOne(pairs []core.Pair) error {
	used := make(map[int]int, len(pairs))
	for _, p := range pairs {
		if prev, ok := used[p.Target]; ok {
			return fmt.Errorf("target %d matched by rows %d and %d", p.Target, prev, p.Source)
		}
		used[p.Target] = p.Source
	}
	return nil
}
