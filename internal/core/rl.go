package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"entmatcher/internal/matrix"
)

// RLConfig parameterizes the RL-based collective matcher.
type RLConfig struct {
	// Candidates is the number of top-scoring columns considered per row
	// during the sequential decision pass.
	Candidates int
	// ConfidenceMargin is the pre-filter threshold: a mutual-nearest pair
	// whose top-1/top-2 score gap exceeds the margin is accepted before the
	// sequential pass (the preprocessing step of [65] that "filters out
	// confident matched entity pairs and excludes them from the
	// time-consuming RL learning process").
	ConfidenceMargin float64
	// TuneIterations bounds the policy-weight search on the validation
	// task. 0 disables tuning and uses the default weights.
	TuneIterations int
	// PolicyTemperature adds stochasticity to the sequential decisions:
	// candidates are sampled from a softmax over policy scores instead of
	// taken greedily. This models the imperfect neural policy of the
	// original A3C agent; 0 makes decisions deterministic.
	PolicyTemperature float64
	// Seed fixes the stochastic weight search when ctx.Rand is nil.
	Seed int64
}

// DefaultRLConfig returns the calibrated RL configuration.
func DefaultRLConfig() RLConfig {
	return RLConfig{
		Candidates:        8,
		ConfidenceMargin:  0.03,
		TuneIterations:    8,
		PolicyTemperature: 0.015,
		Seed:              11,
	}
}

// rlWeights are the policy parameters of the sequential decision: the mix
// of raw similarity, neighborhood coherence bonus and exclusiveness penalty.
type rlWeights struct {
	Sim       float64
	Coherence float64
	Exclusive float64
}

var defaultRLWeights = rlWeights{Sim: 1.0, Coherence: 0.15, Exclusive: 0.3}

// RL is the reinforcement-learning-style collective matcher (the paper's
// § 3.7, after Zeng et al., ACM TOIS 2021 [65]). EA is cast as a sequence
// decision problem: source entities are visited in decreasing confidence
// order, and each decision is scored by a learned policy combining the
// pairwise score with two collective constraints — coherence (prefer
// targets whose neighbors align with the already-matched neighbors of the
// source) and exclusiveness (penalize, but do not forbid, re-using an
// already-matched target, hence "partially" 1-to-1 in Table 2).
//
// Substitution note (DESIGN.md § 2): the original work trains an A3C
// network; this implementation keeps the identical decision structure and
// replaces the neural policy with three interpretable weights tuned by
// stochastic hill-climbing on the validation task, which reproduces the
// behaviours the paper measures: unidirectional decisions, relaxed 1-to-1,
// preprocessing-dependent runtime, and high time cost.
type RL struct {
	Config RLConfig
}

// NewRL returns an RL matcher with the given configuration.
func NewRL(cfg RLConfig) *RL { return &RL{Config: cfg} }

// Name returns "RL".
func (*RL) Name() string { return "RL" }

// Match runs preprocessing, optional policy tuning, and the sequential
// decision pass.
func (m *RL) Match(ctx *Context) (*Result, error) {
	if ctx == nil || ctx.S == nil {
		return nil, ErrNoMatrix
	}
	if m.Config.Candidates < 1 {
		return nil, fmt.Errorf("RL: candidate count must be positive, got %d", m.Config.Candidates)
	}
	start := time.Now()
	cc := ctx.Cancellation()
	rng := ctx.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(m.Config.Seed))
	}

	weights := defaultRLWeights
	if ctx.Valid != nil && m.Config.TuneIterations > 0 {
		var err error
		weights, err = m.tuneWeights(cc, ctx.Valid, rng)
		if err != nil {
			return nil, err
		}
	}

	pairs, abstained, err := m.decide(cc, ctx.S, ctx.SourceAdj, ctx.TargetAdj, ctx.NumDummies, weights, rng)
	if err != nil {
		return nil, err
	}
	rows, cols := ctx.S.Rows(), ctx.S.Cols()
	return &Result{
		Matcher:   m.Name(),
		Pairs:     pairs,
		Abstained: abstained,
		Elapsed:   time.Since(start),
		// Top-k candidate lists plus occupancy and match bookkeeping.
		ExtraBytes: int64(rows)*int64(m.Config.Candidates)*24 + int64(rows+cols)*16,
	}, nil
}

// tuneWeights hill-climbs the policy weights on the validation task,
// maximizing the fraction of gold pairs recovered. Cancellation is checked
// once per tuning epoch (each epoch is one full decision pass on the
// validation matrix).
func (m *RL) tuneWeights(cc context.Context, valid *ValidationTask, rng *rand.Rand) (rlWeights, error) {
	gold := make(map[int]int, len(valid.Gold))
	for _, p := range valid.Gold {
		gold[p.Source] = p.Target
	}
	score := func(w rlWeights) (float64, error) {
		pairs, _, err := m.decide(cc, valid.S, valid.SourceAdj, valid.TargetAdj, 0, w, rng)
		if err != nil {
			return 0, err
		}
		hits := 0
		for _, p := range pairs {
			if gold[p.Source] == p.Target {
				hits++
			}
		}
		return float64(hits), nil
	}
	best := defaultRLWeights
	bestScore, err := score(best)
	if err != nil {
		return best, err
	}
	cur := best
	for it := 0; it < m.Config.TuneIterations; it++ {
		if err := ctxErr(cc); err != nil {
			return best, err
		}
		cand := rlWeights{
			Sim:       clampPos(cur.Sim + rng.NormFloat64()*0.2),
			Coherence: clampPos(cur.Coherence + rng.NormFloat64()*0.15),
			Exclusive: clampPos(cur.Exclusive + rng.NormFloat64()*0.15),
		}
		s, err := score(cand)
		if err != nil {
			return best, err
		}
		if s > bestScore {
			best, bestScore = cand, s
			cur = cand
		} else if rng.Float64() < 0.3 {
			cur = cand // occasional exploration
		}
	}
	return best, nil
}

func clampPos(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// decide runs the sequential decision pass, checking cc every
// checkRowStride row decisions.
func (m *RL) decide(cc context.Context, s *matrix.Dense, srcAdj, tgtAdj [][]int, numDummies int, w rlWeights, rng *rand.Rand) ([]Pair, []int, error) {
	rows, cols := s.Rows(), s.Cols()
	k := m.Config.Candidates
	if k > cols {
		k = cols
	}
	topk := s.RowTopK(k)
	if err := ctxErr(cc); err != nil {
		return nil, nil, err
	}
	realCols := cols - numDummies

	matchOf := make([]int, rows) // row -> chosen column, -1 pending
	for i := range matchOf {
		matchOf[i] = -1
	}
	occupancy := make([]int, cols)
	pairs := make([]Pair, 0, rows)
	var abstained []int

	commit := func(i, j int, score float64) {
		matchOf[i] = j
		occupancy[j]++
		if j >= realCols {
			abstained = append(abstained, i)
			return
		}
		pairs = append(pairs, Pair{Source: i, Target: j, Score: score})
	}

	// Preprocessing: confident pairs are mutual nearest neighbors with a
	// clear top-1/top-2 margin.
	_, colBestRow := s.ColMax()
	remaining := make([]int, 0, rows)
	for i := 0; i < rows; i++ {
		if i%checkRowStride == 0 {
			if err := ctxErr(cc); err != nil {
				return nil, nil, err
			}
		}
		tk := topk[i]
		if len(tk.Indices) == 0 {
			abstained = append(abstained, i)
			matchOf[i] = -2
			continue
		}
		j := tk.Indices[0]
		margin := tk.Values[0]
		if len(tk.Values) > 1 {
			margin = tk.Values[0] - tk.Values[1]
		}
		if colBestRow[j] == i && margin >= m.Config.ConfidenceMargin {
			commit(i, j, tk.Values[0])
			continue
		}
		remaining = append(remaining, i)
	}

	// Sequential pass in decreasing top-score order (most confident first),
	// so earlier (safer) decisions inform later (harder) ones through the
	// coherence and exclusiveness terms.
	sort.Slice(remaining, func(a, b int) bool {
		va, vb := topk[remaining[a]].Values[0], topk[remaining[b]].Values[0]
		if va != vb {
			return va > vb
		}
		return remaining[a] < remaining[b]
	})
	scores := make([]float64, m.Config.Candidates)
	for seq, i := range remaining {
		if seq%checkRowStride == 0 {
			if err := ctxErr(cc); err != nil {
				return nil, nil, err
			}
		}
		tk := topk[i]
		bestScore := 0.0
		bestJ := -1
		for x, j := range tk.Indices {
			score := w.Sim * tk.Values[x]
			if w.Coherence != 0 {
				score += w.Coherence * coherence(i, j, srcAdj, tgtAdj, matchOf)
			}
			score -= w.Exclusive * float64(occupancy[j])
			scores[x] = score
			if bestJ == -1 || score > bestScore {
				bestScore = score
				bestJ = j
			}
		}
		if m.Config.PolicyTemperature > 0 && len(tk.Indices) > 1 {
			// Stochastic policy: sample a candidate from the softmax of the
			// decision scores (the imperfection of a learned policy).
			x := sampleSoftmax(scores[:len(tk.Indices)], bestScore, m.Config.PolicyTemperature, rng)
			bestJ = tk.Indices[x]
			bestScore = scores[x]
		}
		commit(i, bestJ, bestScore)
	}
	return pairs, abstained, nil
}

// sampleSoftmax draws an index proportionally to exp((score−max)/temp).
func sampleSoftmax(scores []float64, max, temp float64, rng *rand.Rand) int {
	var total float64
	weights := make([]float64, len(scores))
	for x, v := range scores {
		w := math.Exp((v - max) / temp)
		weights[x] = w
		total += w
	}
	r := rng.Float64() * total
	for x, w := range weights {
		r -= w
		if r <= 0 {
			return x
		}
	}
	return len(scores) - 1
}

// coherence measures how consistently (i, j) extends the current partial
// matching: the fraction of i's already-matched neighbors whose match is a
// neighbor of j.
func coherence(i, j int, srcAdj, tgtAdj [][]int, matchOf []int) float64 {
	if srcAdj == nil || tgtAdj == nil || i >= len(srcAdj) || j >= len(tgtAdj) {
		return 0
	}
	neighborsJ := tgtAdj[j]
	if len(neighborsJ) == 0 || len(srcAdj[i]) == 0 {
		return 0
	}
	isNeighborOfJ := make(map[int]bool, len(neighborsJ))
	for _, t := range neighborsJ {
		isNeighborOfJ[t] = true
	}
	matchedNeighbors, coherent := 0, 0
	for _, nb := range srcAdj[i] {
		mj := matchOf[nb]
		if mj < 0 {
			continue
		}
		matchedNeighbors++
		if isNeighborOfJ[mj] {
			coherent++
		}
	}
	if matchedNeighbors == 0 {
		return 0
	}
	return float64(coherent) / float64(matchedNeighbors)
}
