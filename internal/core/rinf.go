package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"entmatcher/internal/matrix"
)

// ReciprocalTransform implements the RInf reciprocal preference model
// (Zeng et al., VLDB J 2021; the paper's § 3.4 and Algorithm 5). The
// preference of source u for target v is
//
//	p(u, v) = S(u, v) − max_{u'} S(u', v) + 1,
//
// i.e. u's score discounted by v's best alternative; symmetrically for the
// target side. Both preference matrices are (optionally) converted to
// per-row rank matrices, and the reciprocal matrix is their average. The
// transform returns −(R_st + R_tsᵀ)/2 so that greedy maximization picks the
// best (smallest) average rank.
type ReciprocalTransform struct {
	// WithRanking enables the rank conversion. Disabling it yields the
	// RInf-wr variant: cheaper, but score differences are not amplified
	// before the bidirectional aggregation, which the paper shows to be
	// equivalent in effect to CSLS with k=1.
	WithRanking bool
}

// Name returns "reciprocal" or "reciprocal-wr".
func (t ReciprocalTransform) Name() string {
	if t.WithRanking {
		return "reciprocal"
	}
	return "reciprocal-wr"
}

// Transform computes the reciprocal preference matrix; s is not modified.
func (t ReciprocalTransform) Transform(s *matrix.Dense) (*matrix.Dense, error) {
	return t.TransformContext(context.Background(), s)
}

// TransformContext is Transform with cooperative cancellation, checked
// between the major matrix passes (preference construction, rank transforms
// and bidirectional aggregation — each a full O(rows×cols) sweep).
func (t ReciprocalTransform) TransformContext(ctx context.Context, s *matrix.Dense) (*matrix.Dense, error) {
	rows, cols := s.Rows(), s.Cols()
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("reciprocal: empty matrix %d×%d", rows, cols)
	}
	rowMaxes, _ := s.RowMax() // max over targets for each source
	colMaxes, _ := s.ColMax() // max over sources for each target
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	if !t.WithRanking {
		// RInf-wr averages the raw preferences. Expanding the definition,
		// (p_st + p_ts)/2 = S(u, v) − (rowMax(u) + colMax(v))/2 + 1, which
		// one pass computes without materializing either preference matrix
		// — the variant's whole point is this cost reduction.
		out := s.Clone()
		halfCol := make([]float64, cols)
		for j, v := range colMaxes {
			halfCol[j] = v / 2
		}
		halfRow := make([]float64, rows)
		for i, v := range rowMaxes {
			halfRow[i] = v/2 - 1 // fold the +1 into the row pass
		}
		if err := out.SubRowVector(halfCol); err != nil {
			return nil, err
		}
		if err := out.SubColVector(halfRow); err != nil {
			return nil, err
		}
		return out, nil
	}

	// P_st(u, v) = S(u, v) − colMax(v) + 1.
	pst := s.Clone()
	if err := pst.SubRowVector(colMaxes); err != nil {
		return nil, err
	}
	pst.Apply(func(v float64) float64 { return v + 1 })
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// P_ts(v, u) = S(u, v) − rowMax(u) + 1, stored transposed (cols×rows).
	pts := s.Transpose()
	if err := pts.SubRowVector(rowMaxes); err != nil {
		return nil, err
	}
	pts.Apply(func(v float64) float64 { return v + 1 })
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	pst.RowRanksInPlace()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	pts.RowRanksInPlace()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	// Reciprocal rank matrix: −(R_st + R_tsᵀ)/2.
	ptsT := pts.Transpose()
	for i := 0; i < rows; i++ {
		dst := pst.Row(i)
		add := ptsT.Row(i)
		for j := range dst {
			dst[j] = -(dst[j] + add[j]) / 2
		}
	}
	return pst, nil
}

// ExtraBytes counts the preference matrices in both directions plus the
// transpose scratch — the memory overhead the paper attributes to RInf's
// "computation of similarity, preference, and ranking matrices" — and the
// row/column max value+index vectors live throughout, per the package
// accounting rule.
func (t ReciprocalTransform) ExtraBytes(rows, cols int) int64 {
	if t.WithRanking {
		// Peak: pst, pts and ptsT live together during the final merge.
		return 3*matBytes(rows, cols) + int64(rows+cols)*16
	}
	// The no-ranking variant needs only the single combined matrix plus the
	// max vectors and the two halved-vector scratches.
	return matBytes(rows, cols) + int64(rows+cols)*24
}

// NewRInf returns the full RInf algorithm: reciprocal preferences with rank
// conversion, then greedy matching. Time O(n² lg n), space O(n²) with a
// higher constant than CSLS.
func NewRInf() *Composite {
	return NewComposite(ReciprocalTransform{WithRanking: true}, GreedyDecider{}, "RInf")
}

// NewRInfWR returns the RInf-wr variant (without the ranking process),
// trading a small accuracy drop for far less time and memory.
func NewRInfWR() *Composite {
	return NewComposite(ReciprocalTransform{WithRanking: false}, GreedyDecider{}, "RInf-wr")
}

// RInfPB is the progressive-blocking variant of RInf (the paper's Table 6):
// reciprocal ranking is computed only within each entity's top-C candidate
// block, bounding memory at O(n·C) instead of O(n²). Candidates outside the
// block receive the worst rank, so the result approaches full RInf as C
// grows.
type RInfPB struct {
	// C is the per-entity candidate block size.
	C int
}

// Name returns the paper's label for the variant.
func (RInfPB) Name() string { return "RInf-pb" }

// Match runs the blocked reciprocal matching.
func (m *RInfPB) Match(ctx *Context) (*Result, error) {
	if ctx == nil || ctx.S == nil {
		return nil, ErrNoMatrix
	}
	if m.C < 1 {
		return nil, fmt.Errorf("RInf-pb: block size must be positive, got %d", m.C)
	}
	start := time.Now()
	cc := ctx.Cancellation()
	s := ctx.S
	rows, cols := s.Rows(), s.Cols()
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("RInf-pb: empty matrix %d×%d", rows, cols)
	}
	c := m.C
	if c > cols {
		c = cols
	}
	cRev := m.C
	if cRev > rows {
		cRev = rows
	}

	rowMaxes, _ := s.RowMax()
	colMaxes, _ := s.ColMax()

	// Forward blocks: for each row, the top-c columns ranked by the
	// source-side preference p_st.
	fwd := s.RowTopK(c)
	if err := ctxErr(cc); err != nil {
		return nil, err
	}
	// rankST[i] maps candidate column -> rank (1-based) for row i.
	rankST := make([]map[int]int, rows)
	for i := 0; i < rows; i++ {
		if i%checkRowStride == 0 {
			if err := ctxErr(cc); err != nil {
				return nil, err
			}
		}
		tk := fwd[i]
		prefs := make([]float64, len(tk.Indices))
		for x, j := range tk.Indices {
			prefs[x] = tk.Values[x] - colMaxes[j] + 1
		}
		order := argsortDescByKey(prefs, tk.Indices)
		mrank := make(map[int]int, len(order))
		for r, x := range order {
			mrank[tk.Indices[x]] = r + 1
		}
		rankST[i] = mrank
	}

	// Reverse blocks: for each column, the top-cRev rows ranked by the
	// target-side preference p_ts.
	sT := s.Transpose()
	rev := sT.RowTopK(cRev)
	if err := ctxErr(cc); err != nil {
		return nil, err
	}
	rankTS := make([]map[int]int, cols)
	for j := 0; j < cols; j++ {
		if j%checkRowStride == 0 {
			if err := ctxErr(cc); err != nil {
				return nil, err
			}
		}
		tk := rev[j]
		prefs := make([]float64, len(tk.Indices))
		for x, i := range tk.Indices {
			prefs[x] = tk.Values[x] - rowMaxes[i] + 1
		}
		order := argsortDescByKey(prefs, tk.Indices)
		mrank := make(map[int]int, len(order))
		for r, x := range order {
			mrank[tk.Indices[x]] = r + 1
		}
		rankTS[j] = mrank
	}

	// Combine: average rank with the worst-rank penalty for absences.
	penalty := float64(m.C + 1)
	realCols := cols - ctx.NumDummies
	pairs := make([]Pair, 0, rows)
	var abstained []int
	for i := 0; i < rows; i++ {
		if i%checkRowStride == 0 {
			if err := ctxErr(cc); err != nil {
				return nil, err
			}
		}
		best := math.Inf(1)
		bestJ := -1
		// Iterate candidates in deterministic (top-k) order, not map order.
		for _, j := range fwd[i].Indices {
			rst := rankST[i][j]
			rts, ok := rankTS[j][i]
			r2 := penalty
			if ok {
				r2 = float64(rts)
			}
			avg := (float64(rst) + r2) / 2
			// Tie-break on the smaller column index, matching the greedy
			// first-occurrence rule of the full RInf.
			if avg < best || (avg == best && bestJ >= 0 && j < bestJ) {
				best = avg
				bestJ = j
			}
		}
		if bestJ < 0 {
			abstained = append(abstained, i)
			continue
		}
		if bestJ >= realCols {
			abstained = append(abstained, i)
			continue
		}
		pairs = append(pairs, Pair{Source: i, Target: bestJ, Score: -best})
	}
	return &Result{
		Matcher:    m.Name(),
		Pairs:      pairs,
		Abstained:  abstained,
		Elapsed:    time.Since(start),
		ExtraBytes: matBytes(rows, cols) + int64(rows+cols)*int64(m.C)*24,
	}, nil
}

// NewRInfPB returns the progressive-blocking RInf variant with block size c.
func NewRInfPB(c int) *RInfPB { return &RInfPB{C: c} }

// argsortDescByKey returns the position permutation sorting v in descending
// order; ties are broken by the ascending secondary key (the entity index),
// matching the tie-break of the dense rank transform so that RInf-pb with a
// full-width block reproduces RInf exactly. Preference ties are structural
// here: every cell that attains its column maximum has preference exactly 1.
func argsortDescByKey(v []float64, key []int) []int {
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if v[order[a]] != v[order[b]] {
			return v[order[a]] > v[order[b]]
		}
		return key[order[a]] < key[order[b]]
	})
	return order
}
