package kg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedComponents(t *testing.T) {
	g := NewGraph("g")
	g.AddTripleNames("a", "r", "b")
	g.AddTripleNames("b", "r", "c")
	g.AddTripleNames("x", "r", "y")
	g.AddEntity("lonely")
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes %d/%d/%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

// TestConnectedComponentsPartition: components must partition the vertex set.
func TestConnectedComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph("g")
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			g.AddEntity(string(rune('A'+i%26)) + string(rune('a'+i/26)))
		}
		g.AddRelation("r")
		for e := 0; e < n; e++ {
			if rng.Float64() < 0.6 {
				if err := g.AddTriple(rng.Intn(n), 0, rng.Intn(n)); err != nil {
					return false
				}
			}
		}
		seen := make(map[int]bool)
		for _, comp := range g.ConnectedComponents() {
			for _, id := range comp {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == g.NumEntities()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBFSDistances(t *testing.T) {
	g := NewGraph("g")
	g.AddTripleNames("a", "r", "b")
	g.AddTripleNames("b", "r", "c")
	g.AddEntity("far")
	a, _ := g.EntityID("a")
	c, _ := g.EntityID("c")
	far, _ := g.EntityID("far")
	dist := g.BFSDistances(a)
	if dist[a] != 0 || dist[c] != 2 || dist[far] != -1 {
		t.Fatalf("distances = %v", dist)
	}
	if out := g.BFSDistances(-1); out[a] != -1 {
		t.Fatal("invalid start did not yield all -1")
	}
}

func TestSubgraph(t *testing.T) {
	g := NewGraph("g")
	g.AddTripleNames("a", "r1", "b")
	g.AddTripleNames("b", "r2", "c")
	g.AddTripleNames("c", "r1", "a")
	a, _ := g.EntityID("a")
	b, _ := g.EntityID("b")
	sub, mapping := g.Subgraph([]int{a, b})
	if sub.NumEntities() != 2 {
		t.Fatalf("subgraph entities = %d", sub.NumEntities())
	}
	if sub.NumTriples() != 1 {
		t.Fatalf("subgraph triples = %d (want only a-r1-b)", sub.NumTriples())
	}
	if _, ok := mapping[a]; !ok {
		t.Fatal("mapping missing a")
	}
	// Out-of-range IDs are ignored.
	sub2, _ := g.Subgraph([]int{a, 99})
	if sub2.NumEntities() != 1 {
		t.Fatalf("out-of-range leak: %d entities", sub2.NumEntities())
	}
}

func TestRelationFrequencies(t *testing.T) {
	g := NewGraph("g")
	g.AddTripleNames("a", "r1", "b")
	g.AddTripleNames("b", "r1", "c")
	g.AddTripleNames("a", "r2", "c")
	freq := g.RelationFrequencies()
	r1, _ := 0, 0
	if g.RelationName(0) != "r1" {
		t.Fatal("relation interning order changed")
	}
	_ = r1
	if freq[0] != 2 || freq[1] != 1 {
		t.Fatalf("frequencies = %v", freq)
	}
}

func TestClusteringSample(t *testing.T) {
	// Triangle: clustering coefficient 1 for each vertex.
	tri := NewGraph("tri")
	tri.AddTripleNames("a", "r", "b")
	tri.AddTripleNames("b", "r", "c")
	tri.AddTripleNames("c", "r", "a")
	if cc := tri.ClusteringSample(10); cc < 0.99 {
		t.Fatalf("triangle clustering = %v, want 1", cc)
	}
	// Star: center's neighbors unconnected → 0.
	star := NewGraph("star")
	star.AddTripleNames("hub", "r", "l1")
	star.AddTripleNames("hub", "r", "l2")
	star.AddTripleNames("hub", "r", "l3")
	if cc := star.ClusteringSample(1); cc != 0 {
		t.Fatalf("star clustering = %v, want 0", cc)
	}
	// Empty graph.
	if cc := NewGraph("e").ClusteringSample(5); cc != 0 {
		t.Fatalf("empty graph clustering = %v", cc)
	}
}
