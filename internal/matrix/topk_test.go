package matrix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKOfSliceBasic(t *testing.T) {
	tk := topKOfSlice([]float64{3, 1, 4, 1, 5, 9, 2, 6}, 3)
	wantVals := []float64{9, 6, 5}
	wantIdx := []int{5, 7, 4}
	for i := range wantVals {
		if tk.Values[i] != wantVals[i] || tk.Indices[i] != wantIdx[i] {
			t.Fatalf("top-3 = %v/%v, want %v/%v", tk.Values, tk.Indices, wantVals, wantIdx)
		}
	}
}

func TestTopKLargerThanRow(t *testing.T) {
	tk := topKOfSlice([]float64{2, 1}, 5)
	if len(tk.Values) != 2 || tk.Values[0] != 2 || tk.Values[1] != 1 {
		t.Fatalf("got %v", tk.Values)
	}
}

func TestTopKZero(t *testing.T) {
	tk := topKOfSlice([]float64{1, 2}, 0)
	if len(tk.Values) != 0 {
		t.Fatalf("k=0 returned %v", tk.Values)
	}
}

func TestTopKTieBreaksByIndex(t *testing.T) {
	tk := topKOfSlice([]float64{5, 5, 5, 5}, 2)
	if tk.Indices[0] != 0 || tk.Indices[1] != 1 {
		t.Fatalf("tie indices = %v, want [0 1]", tk.Indices)
	}
}

// TestTopKMatchesSort is the property test: heap-based top-k must agree
// with a full sort for any input.
func TestTopKMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		k := 1 + rng.Intn(n)
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		tk := topKOfSlice(row, k)
		sorted := append([]float64(nil), row...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		for i := 0; i < k; i++ {
			if tk.Values[i] != sorted[i] {
				return false
			}
			if row[tk.Indices[i]] != tk.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRowTopK(t *testing.T) {
	m, _ := NewFromData(2, 4, []float64{1, 3, 2, 0, -1, -5, -2, -3})
	tks := m.RowTopK(2)
	if tks[0].Indices[0] != 1 || tks[0].Indices[1] != 2 {
		t.Fatalf("row 0 top-2 indices = %v", tks[0].Indices)
	}
	if tks[1].Indices[0] != 0 || tks[1].Indices[1] != 2 {
		t.Fatalf("row 1 top-2 indices = %v", tks[1].Indices)
	}
}

func TestRowTopKMeans(t *testing.T) {
	m, _ := NewFromData(1, 4, []float64{1, 2, 3, 4})
	got := m.RowTopKMeans(2)
	if got[0] != 3.5 {
		t.Fatalf("mean of top-2 = %v, want 3.5", got[0])
	}
	all := m.RowTopKMeans(10)
	if all[0] != 2.5 {
		t.Fatalf("mean of all = %v, want 2.5", all[0])
	}
}

func TestColTopKMeansMatchesTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 1+rng.Intn(25), 1+rng.Intn(25))
		k := 1 + rng.Intn(m.Rows())
		direct := m.ColTopKMeans(k)
		viaT := m.Transpose().RowTopKMeans(k)
		for j := range direct {
			if diff := direct[j] - viaT[j]; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestColTopKMeansEdge(t *testing.T) {
	m := New(3, 0)
	if got := m.ColTopKMeans(2); len(got) != 0 {
		t.Fatalf("0-col matrix returned %v", got)
	}
	m2 := New(2, 2)
	if got := m2.ColTopKMeans(0); got[0] != 0 || got[1] != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestRowRanksInPlace(t *testing.T) {
	m, _ := NewFromData(2, 4, []float64{0.9, 0.1, 0.5, 0.7, 1, 2, 3, 4})
	m.RowRanksInPlace()
	want0 := []float64{1, 4, 3, 2}
	want1 := []float64{4, 3, 2, 1}
	for j := range want0 {
		if m.At(0, j) != want0[j] {
			t.Fatalf("row 0 ranks = %v, want %v", m.Row(0), want0)
		}
		if m.At(1, j) != want1[j] {
			t.Fatalf("row 1 ranks = %v, want %v", m.Row(1), want1)
		}
	}
}

// TestRowRanksPermutation checks the property that every row of the rank
// matrix is a permutation of 1..cols.
func TestRowRanksPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 1+rng.Intn(20), 1+rng.Intn(20))
		m.RowRanksInPlace()
		for i := 0; i < m.Rows(); i++ {
			seen := make([]bool, m.Cols())
			for _, v := range m.Row(i) {
				r := int(v)
				if r < 1 || r > m.Cols() || seen[r-1] {
					return false
				}
				seen[r-1] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRowRanksOrderPreserving: a higher value must receive a smaller rank.
func TestRowRanksOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orig := randMatrix(rng, 8, 30)
	ranked := orig.Clone()
	ranked.RowRanksInPlace()
	for i := 0; i < orig.Rows(); i++ {
		for a := 0; a < orig.Cols(); a++ {
			for b := 0; b < orig.Cols(); b++ {
				if orig.At(i, a) > orig.At(i, b) && ranked.At(i, a) >= ranked.At(i, b) {
					t.Fatalf("row %d: value %v ranked %v, value %v ranked %v",
						i, orig.At(i, a), ranked.At(i, a), orig.At(i, b), ranked.At(i, b))
				}
			}
		}
	}
}
