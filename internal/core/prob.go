package core

import (
	"fmt"
	"math"
	"time"

	"entmatcher/internal/matrix"
)

// ProbInf is the probabilistic matcher sketched by the paper's future
// direction (5): "introduce the notion of probability ... to produce the
// alignment results", lifting the one-prediction-per-entity restriction that
// caps every surveyed algorithm on non 1-to-1 data (§ 5.2) and giving a
// principled abstention rule for unmatchable entities (§ 5.1).
//
// The pairwise scores are converted to per-row match probabilities with a
// temperature softmax; every pair whose probability exceeds Threshold is
// emitted — possibly several per source entity (1-to-many recall becomes
// reachable), possibly none (abstention on unmatchable entities). With
// Bidirectional set, a pair must also exceed the threshold under the
// column-wise softmax, sharpening precision the way reciprocal methods do.
type ProbInf struct {
	// Threshold is the acceptance probability; pairs with
	// P(v | u) ≥ Threshold are emitted.
	Threshold float64
	// Tau is the softmax temperature over similarity scores.
	Tau float64
	// Bidirectional additionally requires P(u | v) ≥ Threshold.
	Bidirectional bool
	// MaxPerSource caps the number of pairs emitted per source entity
	// (0 = unlimited).
	MaxPerSource int
}

// NewProbInf returns the probabilistic matcher with calibrated defaults:
// τ = 0.05 (matching the Sinkhorn temperature), bidirectional acceptance at
// probability 0.3, at most 4 matches per source.
func NewProbInf(threshold float64) *ProbInf {
	return &ProbInf{Threshold: threshold, Tau: 0.05, Bidirectional: true, MaxPerSource: 4}
}

// Name returns "ProbInf".
func (*ProbInf) Name() string { return "ProbInf" }

// Match computes row-wise (and optionally column-wise) match probabilities
// and emits all pairs above the threshold.
func (m *ProbInf) Match(ctx *Context) (*Result, error) {
	if ctx == nil || ctx.S == nil {
		return nil, ErrNoMatrix
	}
	if m.Threshold <= 0 || m.Threshold > 1 {
		return nil, fmt.Errorf("ProbInf: threshold must be in (0, 1], got %v", m.Threshold)
	}
	if m.Tau <= 0 {
		return nil, fmt.Errorf("ProbInf: temperature must be positive, got %v", m.Tau)
	}
	start := time.Now()
	cc := ctx.Cancellation()
	s := ctx.S
	rows, cols := s.Rows(), s.Cols()
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("ProbInf: empty matrix %d×%d", rows, cols)
	}
	realCols := cols - ctx.NumDummies

	// Row-wise softmax probabilities.
	rowProb := softmaxRows(s, m.Tau)
	if err := ctxErr(cc); err != nil {
		return nil, err
	}
	// Column-wise probabilities when bidirectional: softmax over each
	// column, computed on the transpose.
	var colProb *matrix.Dense
	if m.Bidirectional {
		colProb = softmaxRows(s.Transpose(), m.Tau)
		if err := ctxErr(cc); err != nil {
			return nil, err
		}
	}

	pairs := make([]Pair, 0, rows)
	var abstained []int
	for i := 0; i < rows; i++ {
		if i%checkRowStride == 0 {
			if err := ctxErr(cc); err != nil {
				return nil, err
			}
		}
		row := rowProb.Row(i)
		emitted := 0
		// Emit in descending probability order up to the cap.
		order := topIndicesDesc(row, m.MaxPerSource, realCols)
		for _, j := range order {
			p := row[j]
			if p < m.Threshold {
				break
			}
			if m.Bidirectional && colProb.At(j, i) < m.Threshold {
				continue
			}
			pairs = append(pairs, Pair{Source: i, Target: j, Score: p})
			emitted++
		}
		if emitted == 0 {
			abstained = append(abstained, i)
		}
	}
	return &Result{
		Matcher:    m.Name(),
		Pairs:      pairs,
		Abstained:  abstained,
		Elapsed:    time.Since(start),
		ExtraBytes: matBytes(rows, cols) * 2,
	}, nil
}

// softmaxRows returns the row-wise softmax of s at temperature tau, with
// per-row max subtraction for stability.
func softmaxRows(s *matrix.Dense, tau float64) *matrix.Dense {
	out := s.Clone()
	inv := 1 / tau
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := expFast((v - maxV) * inv)
			row[j] = e
			sum += e
		}
		if sum > 0 {
			invSum := 1 / sum
			for j := range row {
				row[j] *= invSum
			}
		}
	}
	return out
}

// expFast is math.Exp behind a name shared with the package tests.
func expFast(x float64) float64 { return math.Exp(x) }

// topIndicesDesc returns up to limit column indices of row with the largest
// values, restricted to columns < realCols, in descending value order.
// limit ≤ 0 means all columns.
func topIndicesDesc(row []float64, limit, realCols int) []int {
	if limit <= 0 || limit > realCols {
		limit = realCols
	}
	idx := make([]int, 0, limit)
	used := make([]bool, realCols)
	for k := 0; k < limit; k++ {
		best := -1
		for j := 0; j < realCols; j++ {
			if used[j] {
				continue
			}
			if best < 0 || row[j] > row[best] {
				best = j
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		idx = append(idx, best)
	}
	return idx
}
