package ann

import (
	"context"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestSearchQuant100k is the large-scale acceptance test for the SQ8
// quantized slab scan at the DWY100K geometry: a 100k-row corpus at d=32,
// 100k queries, where the quantized IVF search must return selections
// bit-identical to the float64 path at the default rerank factor, with the
// code slab at least 4× smaller than the float slab it shadows and peak heap
// inside the same 8 GiB budget as the other 100k tests. Gated like those:
//
//	ENTMATCHER_LARGE=1 go test -run TestSearchQuant100k -v ./internal/ann
func TestSearchQuant100k(t *testing.T) {
	if os.Getenv("ENTMATCHER_LARGE") == "" {
		t.Skip("set ENTMATCHER_LARGE=1 to run the 100k quantized-scan test")
	}
	const n, d, c, nprobe = 100_000, 32, 16, 8
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))
	corpus := randTable(rng, n, d, 400)
	queries := randTable(rng, n, d, 400)

	stop := make(chan struct{})
	done := make(chan struct{})
	var peak uint64
	go func() {
		defer close(done)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()

	ivf, err := Build(ctx, corpus, Config{Seed: 11})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := ivf.AttachQuant(encodeTable(t, corpus)); err != nil {
		t.Fatalf("AttachQuant: %v", err)
	}
	floatSlab := int64(n*d) * 8
	if ratio := float64(floatSlab) / float64(ivf.QuantBytes()); ratio < 4 {
		t.Fatalf("quantized slab only %.1fx smaller than the float slab", ratio)
	}

	start := time.Now()
	want, err := ivf.Search(ctx, queries, c, nprobe)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	floatT := time.Since(start)
	start = time.Now()
	got, err := ivf.SearchQuant(ctx, queries, c, nprobe, 0, true)
	if err != nil {
		t.Fatalf("SearchQuant: %v", err)
	}
	quantT := time.Since(start)
	close(stop)
	<-done

	for i := range want {
		if !topKEqual(got[i], want[i]) {
			t.Fatalf("query %d: quantized selection differs from the float scan\ngot  %+v\nwant %+v",
				i, got[i], want[i])
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.Sys > peak {
		peak = ms.Sys
	}
	const limit = 8 << 30
	t.Logf("100k quantized scan (d=%d, C=%d, nprobe=%d, k=%d): float %v, quant %v (%.2fx), slab %d KiB vs %d KiB, peak %d MiB",
		d, c, nprobe, ivf.Clusters(), floatT.Round(time.Millisecond), quantT.Round(time.Millisecond),
		floatT.Seconds()/quantT.Seconds(), floatSlab>>10, ivf.QuantBytes()>>10, peak>>20)
	if peak > limit {
		t.Fatalf("peak memory %d MiB exceeds the 8 GiB budget", peak>>20)
	}
}
