package conformance

import (
	"context"
	"testing"

	"entmatcher/internal/ann"
	"entmatcher/internal/core"
	"entmatcher/internal/matrix"
	"entmatcher/internal/quant"
	"entmatcher/internal/sim"
)

// The SQ8 contract mirrors the ANN one a layer down: the quantized two-phase
// scan (int8 ranking over the code slabs, exact float64 re-rank of the
// over-fetched pool) is an implementation detail, not an approximation. At
// the default rerank factor every emitted candidate graph must be
// bit-identical to the graph the float64 path would have built — against the
// exhaustive builders when the scan replaces them, and against the float IVF
// search when it rides the index. The adversarial embedding suite is shared
// with the ANN tests: duplicate rows, 1-ulp near-ties and all-constant
// tables are where the tie-aware pool boundary earns its keep (quantization
// collapses those scores to identical ints, the tie rule pools the whole
// collapse, and the re-rank becomes exhaustive over it).

// quantSource builds the cosine stream and an exhaustive quantized producer
// over a case at the default rerank factor.
func quantSource(t *testing.T, tc embedCase) (*sim.Stream, *quant.Source) {
	t.Helper()
	st, err := sim.NewStream(tc.Src, tc.Tgt, sim.Cosine)
	if err != nil {
		t.Fatalf("%s: NewStream: %v", tc.Name, err)
	}
	sTab, tTab := st.PreparedTables()
	srcQ, err := quant.Encode(context.Background(), sTab)
	if err != nil {
		t.Fatalf("%s: encoding source table: %v", tc.Name, err)
	}
	tgtQ, err := quant.Encode(context.Background(), tTab)
	if err != nil {
		t.Fatalf("%s: encoding target table: %v", tc.Name, err)
	}
	src, err := quant.NewSource(st, sTab, tTab, srcQ, tgtQ, 0, true)
	if err != nil {
		t.Fatalf("%s: NewSource: %v", tc.Name, err)
	}
	return st, src
}

// TestQuantGraphExactVsExhaustive pins the differential oracle for the
// exhaustive quantized scan: forward graphs, fused forward+reverse pairs,
// and kCol=1 column means from the quant source must be BIT-IDENTICAL to the
// exhaustive float64 builders' on every adversarial embedding case.
func TestQuantGraphExactVsExhaustive(t *testing.T) {
	cc := context.Background()
	for _, tc := range annCases(suiteSeed) {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			st, src := quantSource(t, tc)
			for _, c := range []int{1, 3, tc.Tgt.Rows(), tc.Tgt.Rows() + 5} {
				wantF, wantR, err := matrix.BuildCandGraphs(cc, st, c, c)
				if err != nil {
					t.Fatalf("exact C=%d: %v", c, err)
				}
				gotF, gotR, err := src.ProduceCandGraphs(cc, c, c)
				if err != nil {
					t.Fatalf("quant C=%d: %v", c, err)
				}
				if !graphsIdentical(wantF, gotF) {
					t.Fatalf("C=%d: forward graph differs from the exact build", c)
				}
				if !graphsIdentical(wantR, gotR) {
					t.Fatalf("C=%d: reverse graph differs from the exact build", c)
				}
			}
			wantG, wantM, err := matrix.BuildCandGraphWithColMeans(cc, st, 3, 1)
			if err != nil {
				t.Fatalf("exact colmeans: %v", err)
			}
			gotG, gotM, err := src.ProduceCandGraphWithColMeans(cc, 3, 1)
			if err != nil {
				t.Fatalf("quant colmeans: %v", err)
			}
			if !graphsIdentical(wantG, gotG) {
				t.Fatal("colmeans forward graph differs from the exact build")
			}
			for j := range wantM {
				if wantM[j] != gotM[j] {
					t.Fatalf("col %d: kCol=1 mean %v != exact %v", j, gotM[j], wantM[j])
				}
			}
		})
	}
}

// TestQuantGraphMatchesFloatIVF pins the other face of the contract: an ANN
// source with the quantized scan enabled must emit graphs bit-identical to a
// float ANN source with the same clusters/seed/nprobe — at full AND partial
// coverage, because the quantized slab scan ranks the same probed cells (the
// cell ranking stays float64) and the re-rank restores the float bits within
// them.
func TestQuantGraphMatchesFloatIVF(t *testing.T) {
	cc := context.Background()
	for _, tc := range annCases(suiteSeed) {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for _, nprobe := range []int{2, 6} {
				cfg := ann.Config{Clusters: 6, NProbe: nprobe, Seed: 13}
				_, floatSrc := annSource(t, tc, cfg)
				st, qSrc := annSource(t, tc, cfg)
				sTab, tTab := st.PreparedTables()
				srcQ, err := quant.Encode(cc, sTab)
				if err != nil {
					t.Fatalf("encoding source table: %v", err)
				}
				tgtQ, err := quant.Encode(cc, tTab)
				if err != nil {
					t.Fatalf("encoding target table: %v", err)
				}
				if err := qSrc.EnableQuant(srcQ, tgtQ, 0, true); err != nil {
					t.Fatalf("EnableQuant: %v", err)
				}
				c := min(5, tc.Tgt.Rows())
				wantF, wantR, err := floatSrc.ProduceCandGraphs(cc, c, c)
				if err != nil {
					t.Fatalf("float IVF nprobe=%d: %v", nprobe, err)
				}
				gotF, gotR, err := qSrc.ProduceCandGraphs(cc, c, c)
				if err != nil {
					t.Fatalf("quant IVF nprobe=%d: %v", nprobe, err)
				}
				if !graphsIdentical(wantF, gotF) {
					t.Fatalf("nprobe=%d: forward graph differs from the float IVF build", nprobe)
				}
				if !graphsIdentical(wantR, gotR) {
					t.Fatalf("nprobe=%d: reverse graph differs from the float IVF build", nprobe)
				}
			}
		})
	}
}

// TestQuantMatchersExactOnQuantSource lifts the oracle to matcher level: a
// sparse matcher fed the exhaustive quantized source must produce results
// identical to the same matcher on the plain stream — pairs, scores, and
// abstentions. CSLS runs at k=1, the pinned column-means case (the same
// documented exception as the ANN source: at k>1 summation order can differ
// in the last ulps).
func TestQuantMatchersExactOnQuantSource(t *testing.T) {
	matchers := []struct {
		name string
		mk   func(c int) core.Matcher
	}{
		{"CSLS-k1", func(c int) core.Matcher { return core.NewCSLSSparse(c, 1) }},
		{"RInf", func(c int) core.Matcher { return core.NewRInfSparse(c) }},
		{"Sink.", func(c int) core.Matcher { return core.NewSinkhornSparse(c, core.DefaultSinkhornIterations) }},
		{"Hun.", func(c int) core.Matcher { return core.NewHungarianSparse(c) }},
		{"SMat", func(c int) core.Matcher { return core.NewSMatSparse(c) }},
	}
	for _, tc := range annCases(suiteSeed) {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			st, src := quantSource(t, tc)
			c := min(7, tc.Tgt.Rows())
			for _, m := range matchers {
				want, err := m.mk(c).Match(&core.Context{Stream: st})
				if err != nil {
					t.Fatalf("%s exact: %v", m.name, err)
				}
				got, err := m.mk(c).Match(&core.Context{Stream: src})
				if err != nil {
					t.Fatalf("%s quant: %v", m.name, err)
				}
				if !ResultsIdentical(want, got) {
					t.Fatalf("%s diverged on the quantized source: %s", m.name, DescribeDiff(want, got))
				}
			}
		})
	}
}
