package sim

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"entmatcher/internal/matrix"
)

func TestMatrixRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src, tgt := randEmb(rng, 5, 4), randEmb(rng, 6, 4)

	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		src.Set(2, 1, bad)
		_, err := Matrix(src, tgt, Cosine)
		if !errors.Is(err, ErrNonFinite) {
			t.Fatalf("source %v: want ErrNonFinite, got %v", bad, err)
		}
		if !strings.Contains(err.Error(), "source[2,1]") {
			t.Fatalf("error should locate the bad component: %v", err)
		}
		src.Set(2, 1, 0.5)
	}

	tgt.Set(0, 3, math.NaN())
	_, err := Matrix(src, tgt, Euclidean)
	if !errors.Is(err, ErrNonFinite) || !strings.Contains(err.Error(), "target[0,3]") {
		t.Fatalf("target NaN: %v", err)
	}
}

func TestMatrixRejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src, tgt := randEmb(rng, 5, 4), randEmb(rng, 6, 4)

	if _, err := Matrix(nil, tgt, Cosine); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := Matrix(src, randEmb(rng, 6, 3), Cosine); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := Matrix(matrix.New(0, 4), tgt, Cosine); !errors.Is(err, ErrEmptyEmbeddings) {
		t.Fatal("empty source accepted")
	}
	if _, err := Matrix(src, matrix.New(0, 4), Cosine); !errors.Is(err, ErrEmptyEmbeddings) {
		t.Fatal("empty target accepted")
	}
}

func TestMatrixContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src, tgt := randEmb(rng, 30, 8), randEmb(rng, 30, 8)
	cc, cancel := context.WithCancel(context.Background())
	cancel()
	for _, metric := range []Metric{Cosine, Euclidean, Manhattan} {
		if _, err := MatrixContext(cc, src, tgt, metric); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: want context.Canceled, got %v", metric, err)
		}
	}
}

// TestCosineZeroRows: an all-zero embedding row has no direction; its cosine
// scores must be exactly zero against everything rather than NaN, so the
// validation gate downstream keeps accepting the matrix.
func TestCosineZeroRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src, tgt := randEmb(rng, 4, 6), randEmb(rng, 5, 6)
	for k := range src.Row(2) {
		src.Row(2)[k] = 0
	}
	for k := range tgt.Row(0) {
		tgt.Row(0)[k] = 0
	}
	s, err := Matrix(src, tgt, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s.Cols(); j++ {
		if v := s.At(2, j); v != 0 {
			t.Fatalf("zero source row scored %v against column %d", v, j)
		}
	}
	for i := 0; i < s.Rows(); i++ {
		if v := s.At(i, 0); v != 0 {
			t.Fatalf("zero target row scored %v against row %d", v, i)
		}
	}
	if _, _, ok := s.FindNonFinite(); ok {
		t.Fatal("zero rows produced non-finite scores")
	}
}
