package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunAtQuickScale is the harness smoke test: every
// registered experiment must run to completion at the quick scale and
// produce non-empty, renderable tables.
func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	cfg := QuickConfig()
	env := NewEnv()
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tables, err := exp.Run(&cfg, env)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %s has no rows", tab.ID)
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(buf.String(), tab.ID) {
					t.Fatalf("rendered table missing its ID header:\n%s", buf.String())
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table4"); !ok {
		t.Fatal("table4 not registered")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID resolved")
	}
	if len(IDs()) != len(Experiments()) {
		t.Fatal("IDs() length mismatch")
	}
}

func TestEnvCaching(t *testing.T) {
	env := NewEnv()
	cfg := QuickConfig()
	exp, _ := ByID("table3")
	if _, err := exp.Run(&cfg, env); err != nil {
		t.Fatal(err)
	}
	before := len(env.datasets)
	if _, err := exp.Run(&cfg, env); err != nil {
		t.Fatal(err)
	}
	if len(env.datasets) != before {
		t.Fatalf("second run generated new datasets: %d -> %d", before, len(env.datasets))
	}
}

func TestTableRenderPadding(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow("row1", "1") // short row: second cell padded blank
	tab.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "note: note 7") {
		t.Fatalf("note missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if f3(0.1234) != "0.123" {
		t.Fatalf("f3 = %q", f3(0.1234))
	}
	if pct(0.25) != "+25.0%" {
		t.Fatalf("pct = %q", pct(0.25))
	}
	if secs(123.4) != "123" || secs(1.26) != "1.3" || secs(0.005) != "0.005" {
		t.Fatalf("secs formatting wrong: %q %q %q", secs(123.4), secs(1.26), secs(0.005))
	}
	if v, err := strconv.ParseFloat(gb(1<<30), 64); err != nil || v != 1 {
		t.Fatalf("gb(1GiB) = %q", gb(1<<30))
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	d := DefaultConfig()
	q := QuickConfig()
	if q.ScaleMedium >= d.ScaleMedium {
		t.Fatal("quick config not smaller than default")
	}
	if d.SinkhornL != 100 || d.CSLSK != 1 {
		t.Fatalf("paper hyper-parameters wrong: l=%d k=%d", d.SinkhornL, d.CSLSK)
	}
}
