package matrix

import (
	"context"
	"fmt"
	"math"
)

// negInf is the identity element of the running argmax.
var negInf = math.Inf(-1)

// This file defines the streaming-tile contract of the similarity engine.
//
// A TileSource produces the |src|×|tgt| score matrix as a sequence of
// row×col tiles without ever materializing the whole matrix; TileConsumers
// fold each tile into O(rows + cols·k) running state (argmax, bounded top-k,
// column top-k statistics). Together they drop the matching stage's memory
// from O(n·m) to O(tile + n·k), which is what opens the paper's DWY100K
// (100K×100K ≈ 80 GB dense) setting on commodity machines.
//
// Determinism contract: a TileSource must emit tiles in row-major block
// order — row blocks in ascending row offset, and within a row block, col
// blocks in ascending column offset — and consumers are invoked
// sequentially, one tile at a time. Every consumer below therefore observes
// scores for a given row in ascending column order and scores for a given
// column in ascending row order, exactly the orders the dense one-shot scans
// use, so selections and tie-breaking match the dense path.

// TileConsumer folds streamed score tiles into running state. ConsumeTile is
// called once per tile with the tile's global row/column offsets; tile is a
// scratch buffer reused across calls and must not be retained.
type TileConsumer interface {
	ConsumeTile(rowOff, colOff int, tile *Dense)
}

// TileSource produces a score matrix tile by tile. Implementations:
// sim.Stream (scores computed on the fly from embedding tables) and
// DenseTileSource (an existing matrix re-sliced into tiles, mainly for
// equivalence testing and mixed pipelines).
type TileSource interface {
	// Dims returns the full score-matrix shape the tiles cover.
	Dims() (rows, cols int)
	// StreamTiles pushes every tile through each consumer in deterministic
	// row-major block order, checking ctx between tiles. On a non-nil error
	// the consumers' state is partial and must be discarded.
	StreamTiles(ctx context.Context, consumers ...TileConsumer) error
	// Block materializes an arbitrary sub-matrix indexed by row and column
	// ID lists (the mini-batch shape blocked matchers need).
	Block(ctx context.Context, rowIDs, colIDs []int) (*Dense, error)
}

// DefaultTileRows and DefaultTileCols are the default tile shape:
// 256×512 float64 = 1 MiB per tile, sized so a tile plus the target-side
// embedding block it is computed from stay resident in a per-core L2 cache.
const (
	DefaultTileRows = 256
	DefaultTileCols = 512
)

// DenseTileSource adapts an already-materialized matrix to the TileSource
// interface by re-slicing it into tiles. It exists so fused consumers can be
// validated bit-for-bit against one-shot scans of the same matrix, and so
// streaming matchers can run on dense inputs.
type DenseTileSource struct {
	M *Dense
	// TileRows/TileCols override the tile shape; zero means the defaults.
	TileRows, TileCols int
}

// Dims returns the underlying matrix shape.
func (s *DenseTileSource) Dims() (int, int) { return s.M.rows, s.M.cols }

// StreamTiles copies the matrix tile by tile through the consumers.
func (s *DenseTileSource) StreamTiles(ctx context.Context, consumers ...TileConsumer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	tr, tc := s.TileRows, s.TileCols
	if tr <= 0 {
		tr = DefaultTileRows
	}
	if tc <= 0 {
		tc = DefaultTileCols
	}
	buf := getTileBuf(tr * tc)
	defer putTileBuf(buf)
	tile := &Dense{} // one header reused across tiles; consumers must not retain it
	for rb := 0; rb < s.M.rows; rb += tr {
		rn := min(tr, s.M.rows-rb)
		for cb := 0; cb < s.M.cols; cb += tc {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			cn := min(tc, s.M.cols-cb)
			*tile = Dense{rows: rn, cols: cn, data: buf[:rn*cn]}
			for r := 0; r < rn; r++ {
				copy(tile.Row(r), s.M.data[(rb+r)*s.M.cols+cb:(rb+r)*s.M.cols+cb+cn])
			}
			for _, c := range consumers {
				c.ConsumeTile(rb, cb, tile)
			}
		}
	}
	return nil
}

// Block gathers the sub-matrix at the ID cross product.
func (s *DenseTileSource) Block(ctx context.Context, rowIDs, colIDs []int) (*Dense, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	out := New(len(rowIDs), len(colIDs))
	for x, i := range rowIDs {
		if i < 0 || i >= s.M.rows {
			return nil, fmt.Errorf("%w: block row %d of %d", ErrShape, i, s.M.rows)
		}
		srow := s.M.Row(i)
		drow := out.Row(x)
		for y, j := range colIDs {
			if j < 0 || j >= s.M.cols {
				return nil, fmt.Errorf("%w: block col %d of %d", ErrShape, j, s.M.cols)
			}
			drow[y] = srow[j]
		}
	}
	return out, nil
}

// ColPadder is implemented by tile sources that can append virtual
// constant-score columns natively (sim.Stream constant-fills the dummy
// region of each tile as it is produced).
type ColPadder interface {
	PadCols(n int, score float64) TileSource
}

// PadCols returns a view of src with n extra constant-score columns appended
// after the real ones — the streaming equivalent of appending dummy columns
// to a dense matrix. Sources implementing ColPadder pad natively; anything
// else is wrapped generically. n <= 0 returns src unchanged.
func PadCols(src TileSource, n int, score float64) TileSource {
	if n <= 0 {
		return src
	}
	if p, ok := src.(ColPadder); ok {
		return p.PadCols(n, score)
	}
	return &paddedSource{inner: src, n: n, score: score}
}

// paddedSource appends n constant columns to an arbitrary TileSource. The
// dummy tiles for a row block are emitted after the block's real tiles, so
// the padded stream still satisfies the row-major determinism contract with
// the dummies as trailing columns — exactly where a dense AddDummyColumns
// would put them.
type paddedSource struct {
	inner TileSource
	n     int
	score float64
}

// Dims returns the padded shape.
func (p *paddedSource) Dims() (int, int) {
	r, c := p.inner.Dims()
	return r, c + p.n
}

// StreamTiles forwards the inner tiles and splices the constant dummy tiles
// in at each row-block boundary.
func (p *paddedSource) StreamTiles(ctx context.Context, consumers ...TileConsumer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	rows, cols := p.inner.Dims()
	fw := &padForwarder{pad: p, cols: cols, consumers: consumers}
	if cols == 0 {
		// Degenerate inner source: nothing real to stream, emit the dummy
		// columns directly.
		for rb := 0; rb < rows; rb += DefaultTileRows {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			fw.emitDummies(rb, min(DefaultTileRows, rows-rb))
		}
		return nil
	}
	return p.inner.StreamTiles(ctx, fw)
}

// Block gathers the padded sub-matrix: real columns from the inner source,
// dummy columns at the constant score.
func (p *paddedSource) Block(ctx context.Context, rowIDs, colIDs []int) (*Dense, error) {
	_, cols := p.inner.Dims()
	innerPos := make([]int, 0, len(colIDs))
	innerCols := make([]int, 0, len(colIDs))
	for y, j := range colIDs {
		if j < 0 || j >= cols+p.n {
			return nil, fmt.Errorf("%w: block col %d of %d", ErrShape, j, cols+p.n)
		}
		if j < cols {
			innerPos = append(innerPos, y)
			innerCols = append(innerCols, j)
		}
	}
	out := New(len(rowIDs), len(colIDs))
	for i := range out.data {
		out.data[i] = p.score
	}
	if len(innerCols) > 0 {
		sub, err := p.inner.Block(ctx, rowIDs, innerCols)
		if err != nil {
			return nil, err
		}
		for x := range rowIDs {
			srow := sub.Row(x)
			drow := out.Row(x)
			for k, y := range innerPos {
				drow[y] = srow[k]
			}
		}
	}
	return out, nil
}

// padForwarder relays real tiles to the consumers and emits the dummy tiles
// once a row block's last real tile has passed through.
type padForwarder struct {
	pad       *paddedSource
	cols      int
	consumers []TileConsumer
}

// ConsumeTile forwards the tile and, at a row-block boundary, the dummies.
func (f *padForwarder) ConsumeTile(rowOff, colOff int, tile *Dense) {
	for _, c := range f.consumers {
		c.ConsumeTile(rowOff, colOff, tile)
	}
	if colOff+tile.cols >= f.cols {
		f.emitDummies(rowOff, tile.rows)
	}
}

// emitDummies streams the n constant columns for rows [rowOff, rowOff+rn).
func (f *padForwarder) emitDummies(rowOff, rn int) {
	for cb := 0; cb < f.pad.n; cb += DefaultTileCols {
		cn := min(DefaultTileCols, f.pad.n-cb)
		buf := getTileBuf(rn * cn)
		for i := range buf {
			buf[i] = f.pad.score
		}
		tile := &Dense{rows: rn, cols: cn, data: buf}
		for _, c := range f.consumers {
			c.ConsumeTile(rowOff, f.cols+cb, tile)
		}
		putTileBuf(buf)
	}
}

// RunningArgmax is the fused greedy consumer: per-row maximum value and the
// column index of its first occurrence, folded across tiles. After a
// complete stream, Vals/Idx equal exactly what Dense.RowMax returns for the
// same scores (strict-greater updates + ascending column visitation keep the
// first maximum).
type RunningArgmax struct {
	Vals []float64
	Idx  []int
}

// NewRunningArgmax returns an accumulator for the given row count, with
// every row at (-Inf, -1) — the value RowMax yields for width-zero rows.
func NewRunningArgmax(rows int) *RunningArgmax {
	r := &RunningArgmax{Vals: make([]float64, rows), Idx: make([]int, rows)}
	for i := range r.Vals {
		r.Vals[i] = negInf
		r.Idx[i] = -1
	}
	return r
}

// ConsumeTile folds one tile into the running argmax.
func (a *RunningArgmax) ConsumeTile(rowOff, colOff int, tile *Dense) {
	for r := 0; r < tile.rows; r++ {
		row := tile.Row(r)
		best, bi := a.Vals[rowOff+r], a.Idx[rowOff+r]
		for c, v := range row {
			if v > best {
				best, bi = v, colOff+c
			}
		}
		a.Vals[rowOff+r], a.Idx[rowOff+r] = best, bi
	}
}

// SizeBytes is the accumulator's heap footprint (the O(n) streaming state).
func (a *RunningArgmax) SizeBytes() int64 { return int64(len(a.Vals)) * 16 }

// RunningTopK is the fused bounded-candidate consumer: per-row top-k values
// and column indices folded across tiles in O(rows·k) memory. Selection and
// tie-breaking are identical to Dense.RowTopK because both funnel every
// candidate through the same heap offer in the same column order.
type RunningTopK struct {
	k     int
	heaps []minHeap
	// backingVals/backingIdx are pooled flat arrays sliced into k-capacity
	// heap storage, so construction costs O(1) allocations instead of
	// O(rows). Returned to the pool by Release.
	backingVals []float64
	backingIdx  []int
}

// NewRunningTopK returns an accumulator holding the k best candidates per
// row. k is clamped to at least 0; rows with fewer than k scored columns
// simply keep them all. Call Release once the results derived from
// Finalize/Means are no longer referenced to recycle the heap storage.
func NewRunningTopK(rows, k int) *RunningTopK {
	if k < 0 {
		k = 0
	}
	t := &RunningTopK{k: k, heaps: make([]minHeap, rows)}
	if k > 0 && rows > 0 {
		t.backingVals = getHeapVals(rows * k)
		t.backingIdx = getHeapIdx(rows * k)
		for i := range t.heaps {
			t.heaps[i] = minHeap{
				vals: t.backingVals[i*k : i*k : (i+1)*k],
				idx:  t.backingIdx[i*k : i*k : (i+1)*k],
			}
		}
	}
	return t
}

// Release returns the pooled heap storage. The accumulator — and any TopK
// slices returned by Finalize, which alias the storage — must not be used
// afterwards. Callers that retain Finalize results past the accumulator's
// lifetime must copy them first (or skip Release).
func (t *RunningTopK) Release() {
	if t.backingVals != nil {
		putHeapVals(t.backingVals)
		putHeapIdx(t.backingIdx)
		t.backingVals, t.backingIdx = nil, nil
	}
	t.heaps = nil
}

// ConsumeTile folds one tile into the per-row heaps.
func (t *RunningTopK) ConsumeTile(rowOff, colOff int, tile *Dense) {
	if t.k == 0 {
		return
	}
	for r := 0; r < tile.rows; r++ {
		h := &t.heaps[rowOff+r]
		for c, v := range tile.Row(r) {
			h.offer(v, colOff+c, t.k)
		}
	}
}

// Finalize returns each row's candidates in descending value order (ties by
// ascending column), matching Dense.RowTopK. The accumulator must not be
// fed further tiles afterwards.
func (t *RunningTopK) Finalize() []TopK {
	out := make([]TopK, len(t.heaps))
	for i := range t.heaps {
		out[i] = t.heaps[i].finalize()
	}
	return out
}

// Means returns each row's top-k mean (the CSLS φ_s statistic), averaging in
// descending-sorted order exactly as Dense.RowTopKMeans does. Like Finalize,
// it consumes the accumulator.
func (t *RunningTopK) Means() []float64 {
	out := make([]float64, len(t.heaps))
	for i := range t.heaps {
		tk := t.heaps[i].finalize()
		if len(tk.Values) == 0 {
			continue
		}
		var s float64
		for _, v := range tk.Values {
			s += v
		}
		out[i] = s / float64(len(tk.Values))
	}
	return out
}

// SizeBytes is the accumulator's heap footprint: O(rows·k).
func (t *RunningTopK) SizeBytes() int64 { return int64(len(t.heaps)) * int64(t.k) * 16 }

// ColTopKAcc is the fused column-statistic consumer: per-column top-k heaps
// folded across tiles, yielding the CSLS φ_t statistic in O(cols·k) memory.
// Because tiles arrive in ascending row order, each column's heap sees rows
// in the same order as Dense.ColTopKMeans' scan and the means agree
// bit-for-bit.
type ColTopKAcc struct {
	k     int
	heaps []minHeap
	// Pooled flat heap storage, as in RunningTopK.
	backingVals []float64
	backingIdx  []int
}

// NewColTopKAcc returns an accumulator for the given column count, keeping
// the k best rows per column. Pass k already clamped to the row count for
// exact Dense.ColTopKMeans equivalence. Call Release when done to recycle
// the heap storage.
func NewColTopKAcc(cols, k int) *ColTopKAcc {
	if k < 0 {
		k = 0
	}
	a := &ColTopKAcc{k: k, heaps: make([]minHeap, cols)}
	if k > 0 && cols > 0 {
		a.backingVals = getHeapVals(cols * k)
		a.backingIdx = getHeapIdx(cols * k)
		for j := range a.heaps {
			a.heaps[j] = minHeap{
				vals: a.backingVals[j*k : j*k : (j+1)*k],
				idx:  a.backingIdx[j*k : j*k : (j+1)*k],
			}
		}
	}
	return a
}

// Release returns the pooled heap storage; the accumulator must not be used
// afterwards.
func (a *ColTopKAcc) Release() {
	if a.backingVals != nil {
		putHeapVals(a.backingVals)
		putHeapIdx(a.backingIdx)
		a.backingVals, a.backingIdx = nil, nil
	}
	a.heaps = nil
}

// ConsumeTile folds one tile into the per-column heaps.
func (a *ColTopKAcc) ConsumeTile(rowOff, colOff int, tile *Dense) {
	if a.k == 0 {
		return
	}
	for r := 0; r < tile.rows; r++ {
		row := tile.Row(r)
		for c, v := range row {
			a.heaps[colOff+c].offer(v, rowOff+r, a.k)
		}
	}
}

// Means returns the per-column top-k means in heap-array order — the same
// summation Dense.ColTopKMeans performs.
func (a *ColTopKAcc) Means() []float64 {
	out := make([]float64, len(a.heaps))
	for j := range a.heaps {
		out[j] = a.heaps[j].heapMean()
	}
	return out
}

// SizeBytes is the accumulator's heap footprint: O(cols·k).
func (a *ColTopKAcc) SizeBytes() int64 { return int64(len(a.heaps)) * int64(a.k) * 16 }
