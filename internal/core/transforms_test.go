package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"entmatcher/internal/matrix"
)

func TestCSLSKnownValues(t *testing.T) {
	s := mat(t,
		[]float64{0.9, 0.1},
		[]float64{0.4, 0.3},
	)
	out, err := CSLSTransform{K: 1}.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	// φ_s = [0.9, 0.4]; φ_t = [0.9, 0.3].
	// S_CSLS(0,0) = 2·0.9 − 0.9 − 0.9 = 0.
	// S_CSLS(1,0) = 2·0.4 − 0.4 − 0.9 = −0.5.
	// S_CSLS(1,1) = 2·0.3 − 0.4 − 0.3 = −0.1.
	if math.Abs(out.At(0, 0)) > 1e-12 {
		t.Fatalf("S_CSLS(0,0) = %v", out.At(0, 0))
	}
	if math.Abs(out.At(1, 0)+0.5) > 1e-12 || math.Abs(out.At(1, 1)+0.1) > 1e-12 {
		t.Fatalf("row 1 = %v", out.Row(1))
	}
}

func TestCSLSRejectsBadK(t *testing.T) {
	if _, err := (CSLSTransform{K: 0}).Transform(matrix.New(2, 2)); err == nil {
		t.Fatal("K=0 accepted")
	}
}

// TestCSLSPenalizesHubs: a hub column (high similarity to everyone) must
// lose score relative to a non-hub, which is the stated purpose of CSLS.
func TestCSLSPenalizesHubs(t *testing.T) {
	// Column 0 is a hub: every row scores it 0.8. Column 1 is scored 0.75
	// by row 0 only.
	s := mat(t,
		[]float64{0.8, 0.75},
		[]float64{0.8, 0.1},
		[]float64{0.8, 0.2},
	)
	res, err := NewCSLS(2).Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if pairsBySource(res)[0] != 1 {
		t.Fatalf("CSLS kept row 0 on the hub: %+v", res.Pairs)
	}
	// Raw greedy keeps the hub, for contrast.
	g, err := NewDInf().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if pairsBySource(g)[0] != 0 {
		t.Fatalf("greedy unexpectedly avoided the hub: %+v", g.Pairs)
	}
}

// TestRInfWRMatchesCSLSK1 is the paper's § 4.5 observation: with k=1 the
// difference between RInf and CSLS reduces to the ranking process, so the
// no-ranking variant RInf-wr must produce the same matching as CSLS(k=1).
func TestRInfWRMatchesCSLSK1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randScores(rng, 2+rng.Intn(30), 2+rng.Intn(30))
		a, err := NewRInfWR().Match(&Context{S: s})
		if err != nil {
			return false
		}
		b, err := NewCSLS(1).Match(&Context{S: s})
		if err != nil {
			return false
		}
		pa, pb := pairsBySource(a), pairsBySource(b)
		if len(pa) != len(pb) {
			return false
		}
		for src, tgt := range pa {
			if pb[src] != tgt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReciprocalPreferenceFormula(t *testing.T) {
	s := mat(t,
		[]float64{0.9, 0.2},
		[]float64{0.6, 0.5},
	)
	out, err := ReciprocalTransform{WithRanking: false}.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	// p_st(0,0) = 0.9 − max(0.9, 0.6) + 1 = 1.0
	// p_ts(0,0) = 0.9 − max(0.9, 0.2) + 1 = 1.0 → combined 1.0.
	if math.Abs(out.At(0, 0)-1.0) > 1e-12 {
		t.Fatalf("combined(0,0) = %v", out.At(0, 0))
	}
	// p_st(1,1) = 0.5 − 0.5 + 1 = 1.0; p_ts(1,1) = 0.5 − 0.6 + 1 = 0.9
	// → combined 0.95.
	if math.Abs(out.At(1, 1)-0.95) > 1e-12 {
		t.Fatalf("combined(1,1) = %v", out.At(1, 1))
	}
}

// TestRInfRanksAreNegatedAverages: with ranking, the output at (i,j) is
// −(rank_st + rank_ts)/2, so the best reciprocal pair has value −1.
func TestRInfPerfectPairGetsBestValue(t *testing.T) {
	s := mat(t,
		[]float64{0.95, 0.1, 0.2},
		[]float64{0.1, 0.9, 0.15},
		[]float64{0.2, 0.1, 0.85},
	)
	out, err := ReciprocalTransform{WithRanking: true}.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if out.At(i, i) != -1 {
			t.Fatalf("diagonal rank value (%d,%d) = %v, want -1", i, i, out.At(i, i))
		}
	}
}

// TestRInfResolvesHubConflict: reciprocal modeling must stop a weaker row
// from claiming a target whose preference lies elsewhere.
func TestRInfResolvesHubConflict(t *testing.T) {
	// Both rows' best raw column is 0, but column 0 clearly prefers row 0
	// and column 1 prefers row 1.
	s := mat(t,
		[]float64{0.90, 0.30},
		[]float64{0.80, 0.60},
	)
	g, err := NewDInf().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if pairsBySource(g)[1] != 0 {
		t.Fatalf("greedy should send row 1 to column 0: %+v", g.Pairs)
	}
	r, err := NewRInf().Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	got := pairsBySource(r)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("RInf pairs = %v, want {0:0, 1:1}", got)
	}
}

// TestRInfPBApproachesRInf: with a block size covering all columns, the
// progressive-blocking variant must agree with full RInf.
func TestRInfPBApproachesRInf(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		s := randScores(rng, n, n)
		full, err := NewRInf().Match(&Context{S: s})
		if err != nil {
			return false
		}
		blocked, err := NewRInfPB(n).Match(&Context{S: s})
		if err != nil {
			return false
		}
		pf, pb := pairsBySource(full), pairsBySource(blocked)
		for src, tgt := range pf {
			if pb[src] != tgt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRInfPBRejectsBadBlock(t *testing.T) {
	if _, err := NewRInfPB(0).Match(&Context{S: matrix.New(2, 2)}); err == nil {
		t.Fatal("C=0 accepted")
	}
}

func TestSinkhornDoublyStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randScores(rng, 15, 15)
	out, err := SinkhornTransform{L: 200, Tau: 0.1}.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, sum := range out.RowSums() {
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("row %d sums to %v after Sinkhorn", i, sum)
		}
	}
	for j, sum := range out.ColSums() {
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("col %d sums to %v after Sinkhorn", j, sum)
		}
	}
}

func TestSinkhornRejectsBadConfig(t *testing.T) {
	if _, err := (SinkhornTransform{L: -1, Tau: 0.1}).Transform(matrix.New(2, 2)); err == nil {
		t.Fatal("negative L accepted")
	}
	if _, err := (SinkhornTransform{L: 1, Tau: 0}).Transform(matrix.New(2, 2)); err == nil {
		t.Fatal("zero temperature accepted")
	}
}

// TestSinkhornImplicit1To1: on a conflict matrix where greedy collapses,
// enough Sinkhorn iterations must spread the assignment — the implicit
// 1-to-1 constraint of the paper's § 4.5.
func TestSinkhornImplicit1To1(t *testing.T) {
	s := mat(t,
		[]float64{0.90, 0.30},
		[]float64{0.80, 0.60},
	)
	res, err := NewSinkhorn(DefaultSinkhornIterations).Match(&Context{S: s})
	if err != nil {
		t.Fatal(err)
	}
	got := pairsBySource(res)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("Sinkhorn pairs = %v", got)
	}
}

// TestSinkhornMoreIterationsNoWorse mirrors Figure 7's trend on a noisy
// instance: l = 100 must recover at least as many diagonal pairs as l = 1.
func TestSinkhornMoreIterationsHelp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := diagonalish(rng, 60, 0.12, 0.5)
	at := func(l int) int {
		res, err := NewSinkhorn(l).Match(&Context{S: s})
		if err != nil {
			t.Fatal(err)
		}
		return diagonalHits(res)
	}
	if at(100) < at(1) {
		t.Fatalf("l=100 hits %d < l=1 hits %d", at(100), at(1))
	}
}
