package bench

import (
	"fmt"
	"time"

	"entmatcher"
	"entmatcher/internal/datagen"
	"entmatcher/internal/sim"
)

// figureGroups are the embedding settings whose similarity matrices the
// figure experiments sweep: the four structural groups of Table 4 plus the
// name and fused settings of Table 5.
func figureGroups() []struct {
	Label    string
	PC       entmatcher.PipelineConfig
	Profiles []datagen.Profile
} {
	srprsCross := []datagen.Profile{datagen.SRPRSFrEn, datagen.SRPRSDeEn}
	return []struct {
		Label    string
		PC       entmatcher.PipelineConfig
		Profiles []datagen.Profile
	}{
		{"R-DBP", entmatcher.PipelineConfig{Model: entmatcher.ModelRREA, WithValidation: true}, datagen.DBP15K()},
		{"R-SRP", entmatcher.PipelineConfig{Model: entmatcher.ModelRREA, WithValidation: true}, datagen.SRPRS()},
		{"G-DBP", entmatcher.PipelineConfig{Model: entmatcher.ModelGCN, WithValidation: true}, datagen.DBP15K()},
		{"G-SRP", entmatcher.PipelineConfig{Model: entmatcher.ModelGCN, WithValidation: true}, datagen.SRPRS()},
		{"N-DBP", entmatcher.PipelineConfig{Features: entmatcher.FeatureName, WithValidation: true}, datagen.DBP15K()},
		{"N-SRP", entmatcher.PipelineConfig{Features: entmatcher.FeatureName, WithValidation: true}, srprsCross},
		{"NR-DBP", entmatcher.PipelineConfig{Model: entmatcher.ModelRREA, Features: entmatcher.FeatureFused, WithValidation: true}, datagen.DBP15K()},
		{"NR-SRP", entmatcher.PipelineConfig{Model: entmatcher.ModelRREA, Features: entmatcher.FeatureFused, WithValidation: true}, srprsCross},
	}
}

// runFigure4 reproduces Figure 4: the average standard deviation of the
// top-5 pairwise similarity scores per evaluation setting. Low values mean
// the leading candidates are hard to tell apart (Pattern 1's regime where
// CSLS/RInf shine); the name-based settings must come out clearly higher
// than the structural ones.
func runFigure4(cfg *Config, env *Env) ([]*Table, error) {
	t := &Table{
		ID:      "figure4",
		Title:   "Average STD of each source entity's top-5 pairwise scores",
		Columns: []string{"avg top-5 STD"},
	}
	for _, grp := range figureGroups() {
		var total float64
		var n int
		for _, prof := range grp.Profiles {
			d, err := env.Dataset(prof, cfg.ScaleMedium)
			if err != nil {
				return nil, err
			}
			run, err := env.Run(d, grp.PC)
			if err != nil {
				return nil, err
			}
			total += sim.TopScoreSTD(run.S, 5)
			n++
		}
		t.AddRow(grp.Label, fmt.Sprintf("%.4f", total/float64(n)))
		cfg.logf("  figure4 %s: %.4f", grp.Label, total/float64(n))
	}
	t.AddNote("paper trend: structural settings (R-, G-) have low STD — top scores are hard to distinguish; name-based settings (N-, NR-) have clearly higher STD")
	return []*Table{t}, nil
}

// runFigure5 reproduces Figure 5: wall-clock time (a) and working memory
// (b) of every algorithm across the Table 4/5 settings.
func runFigure5(cfg *Config, env *Env) ([]*Table, error) {
	groups := figureGroups()
	timeTable := &Table{ID: "figure5a", Title: "Time cost in seconds (measured)"}
	memTable := &Table{ID: "figure5b", Title: "Working memory beyond the similarity matrix, GiB (measured)"}
	for _, grp := range groups {
		timeTable.Columns = append(timeTable.Columns, grp.Label)
		memTable.Columns = append(memTable.Columns, grp.Label)
	}
	elapsed := make(map[string][]float64)
	mem := make(map[string][]float64)
	for _, grp := range groups {
		cfg.logf("figure5 group %s", grp.Label)
		g, err := runGroup(cfg, env, grp.Label, grp.Profiles, cfg.ScaleMedium, grp.PC)
		if err != nil {
			return nil, err
		}
		for _, name := range matcherOrder {
			elapsed[name] = append(elapsed[name], g.Elapsed[name].Seconds()/float64(len(grp.Profiles)))
			mem[name] = append(mem[name], float64(g.ExtraBytes[name])/(1<<30))
		}
	}
	for _, name := range matcherOrder {
		tCells := make([]string, len(elapsed[name]))
		mCells := make([]string, len(mem[name]))
		for i, v := range elapsed[name] {
			tCells[i] = secs(v)
		}
		for i, v := range mem[name] {
			mCells[i] = fmt.Sprintf("%.3f", v)
		}
		timeTable.AddRow(name, tCells...)
		memTable.AddRow(name, mCells...)
	}
	timeTable.AddNote("paper trend: DInf fastest; CSLS close behind; RInf and Hun. comparable; Sink. slower (l=%d); RL slowest", cfg.SinkhornL)
	memTable.AddNote("paper trend: DInf leanest; methods with global constraints and rank matrices cost the most")
	return []*Table{timeTable, memTable}, nil
}

// runFigure6 reproduces Figure 6: CSLS F1 as a function of the neighborhood
// size k, per structural setting. The paper's finding: larger k is worse
// under the 1-to-1 setting.
func runFigure6(cfg *Config, env *Env) ([]*Table, error) {
	ks := []int{1, 2, 5, 10, 20}
	t := &Table{ID: "figure6", Title: "CSLS F1 vs k (measured)"}
	for _, k := range ks {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
	}
	for _, grp := range figureGroups()[:4] { // the structural settings
		row := make([]string, 0, len(ks))
		for _, k := range ks {
			var total float64
			var n int
			for _, prof := range grp.Profiles {
				d, err := env.Dataset(prof, cfg.ScaleMedium)
				if err != nil {
					return nil, err
				}
				run, err := env.Run(d, grp.PC)
				if err != nil {
					return nil, err
				}
				_, metrics, err := run.Match(entmatcher.NewCSLS(k))
				if err != nil {
					return nil, err
				}
				total += metrics.F1
				n++
			}
			row = append(row, f3(total/float64(n)))
			cfg.logf("  figure6 %s k=%d: F1=%.3f", grp.Label, k, total/float64(n))
		}
		t.AddRow(grp.Label, row...)
	}
	t.AddNote("paper trend: F1 decreases monotonically as k grows (a larger k makes φ smaller and the rescaled scores less distinctive)")
	return []*Table{t}, nil
}

// runFigure7 reproduces Figure 7: Sinkhorn F1 as a function of the
// iteration count l. The paper's finding: more iterations fit the 1-to-1
// constraint better; l=100 balances effectiveness and time.
func runFigure7(cfg *Config, env *Env) ([]*Table, error) {
	ls := []int{1, 5, 10, 50, 100, 300}
	t := &Table{ID: "figure7", Title: "Sinkhorn F1 vs l (measured; time of the largest l in note)"}
	for _, l := range ls {
		t.Columns = append(t.Columns, fmt.Sprintf("l=%d", l))
	}
	var worstTime time.Duration
	for _, grp := range figureGroups()[:4] {
		row := make([]string, 0, len(ls))
		for _, l := range ls {
			var total float64
			var n int
			for _, prof := range grp.Profiles {
				d, err := env.Dataset(prof, cfg.ScaleMedium)
				if err != nil {
					return nil, err
				}
				run, err := env.Run(d, grp.PC)
				if err != nil {
					return nil, err
				}
				res, metrics, err := run.Match(entmatcher.NewSinkhorn(l))
				if err != nil {
					return nil, err
				}
				if l == ls[len(ls)-1] && res.Elapsed > worstTime {
					worstTime = res.Elapsed
				}
				total += metrics.F1
				n++
			}
			row = append(row, f3(total/float64(n)))
			cfg.logf("  figure7 %s l=%d: F1=%.3f", grp.Label, l, total/float64(n))
		}
		t.AddRow(grp.Label, row...)
	}
	t.AddNote("paper trend: F1 rises with l and saturates around l=100; larger l costs proportionally more time (l=%d took %v on the largest pair)", ls[len(ls)-1], worstTime.Round(time.Millisecond))
	return []*Table{t}, nil
}
