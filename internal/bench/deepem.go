package bench

import (
	"time"

	"entmatcher"
	"entmatcher/internal/core"
	"entmatcher/internal/datagen"
	"entmatcher/internal/deepem"
	"entmatcher/internal/embed"
	"entmatcher/internal/eval"
)

// runDeepEM reproduces § 4.3: applying deep-learning entity-matching
// classifiers to EA. Two adaptations are compared against DInf on the D-Z
// pair with RREA embeddings:
//
//   - deepmatcher-style (token interface): embeddings serialized into
//     discrete tokens and classified through learned token embeddings —
//     the paper's protocol, which collapses to near-zero F1;
//   - dense adaptation: an MLP over the raw embedding concatenation —
//     a stronger adaptation this study adds, which still does not beat the
//     trivial DInf baseline.
func runDeepEM(cfg *Config, env *Env) ([]*Table, error) {
	d, err := env.Dataset(datagen.DBP15KZhEn, cfg.ScaleMedium)
	if err != nil {
		return nil, err
	}
	emb, err := embed.Encode(d, embed.DefaultConfig(embed.ModelRREA))
	if err != nil {
		return nil, err
	}
	task, err := eval.OneToOneTask(d)
	if err != nil {
		return nil, err
	}
	pos := make([]core.Pair, len(d.Split.Train.Links))
	for i, l := range d.Split.Train.Links {
		pos[i] = core.Pair{Source: l.Source, Target: l.Target}
	}

	t := &Table{
		ID:      "deepem",
		Title:   "DL-based EM adapted to EA (D-Z, RREA embeddings)",
		Columns: []string{"P", "R", "F1", "train+infer T(s)"},
	}

	// DInf baseline via the standard pipeline.
	run, err := env.Run(d, entmatcher.PipelineConfig{Model: entmatcher.ModelRREA, WithValidation: true})
	if err != nil {
		return nil, err
	}
	res, metrics, err := run.Match(entmatcher.NewDInf())
	if err != nil {
		return nil, err
	}
	t.AddRow("DInf (baseline)", f3(metrics.Precision), f3(metrics.Recall), f3(metrics.F1), secs(res.Elapsed.Seconds()))

	// Token-interface classifier (the paper's protocol).
	start := time.Now()
	tok, err := deepem.TrainTokens(emb.Source, emb.Target, pos, deepem.DefaultTokenConfig())
	if err != nil {
		return nil, err
	}
	tokPairs := tok.MatchAll(emb.Source, emb.Target, task.SourceIDs, task.TargetIDs)
	tokMetrics := eval.Score(tokPairs, task.Gold)
	t.AddRow("deepmatcher-style", f3(tokMetrics.Precision), f3(tokMetrics.Recall), f3(tokMetrics.F1), secs(time.Since(start).Seconds()))
	cfg.logf("  deepem token: %s", tokMetrics)

	// Dense MLP adaptation (additional ablation).
	start = time.Now()
	dense, err := deepem.Train(emb.Source, emb.Target, pos, deepem.DefaultConfig())
	if err != nil {
		return nil, err
	}
	densePairs := dense.MatchAll(emb.Source, emb.Target, task.SourceIDs, task.TargetIDs)
	denseMetrics := eval.Score(densePairs, task.Gold)
	t.AddRow("dense-MLP adaptation", f3(denseMetrics.Precision), f3(denseMetrics.Recall), f3(denseMetrics.F1), secs(time.Since(start).Seconds()))
	cfg.logf("  deepem dense: %s", denseMetrics)

	t.AddNote("paper: \"only several entities are correctly aligned, showing that DL-based EM approaches cannot handle EA\"")
	t.AddNote("the dense adaptation is this study's stronger variant; it learns a usable similarity but still trails the trivial DInf baseline")
	return []*Table{t}, nil
}
