//go:build !race

package matrix

// raceEnabled mirrors race_on_test.go for regular builds.
const raceEnabled = false
