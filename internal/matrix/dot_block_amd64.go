//go:build amd64 && !purego

package matrix

// dotBlock3AVX2 computes out[j] = dot(aj, b) for three source rows sharing
// one target row, loading each b chunk into a register once per step and
// issuing one FMA per source row from it. Per-pair arithmetic — accumulator
// layout, reduction tree, scalar tail — is exactly dotAVX2's, so each out[j]
// is bit-identical to dotAVX2(aj, b); the blocking only changes which row's
// memory traffic is amortized, never a rounding step. All four slices must
// have equal length. Implemented in dot_block_amd64.s.
//
//go:noescape
func dotBlock3AVX2(a0, a1, a2, b []float64, out *[3]float64)
